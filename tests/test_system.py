"""Unit tests for the two-level MemorySystem."""

import pytest

from repro.buffers.base import CompositeAugmentation
from repro.buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig, SystemConfig, baseline_system
from repro.common.types import IFETCH, LOAD, STORE, AccessOutcome
from repro.hierarchy.system import L2Stats, MemorySystem


class TestRouting:
    def test_ifetch_goes_to_icache(self):
        system = MemorySystem()
        system.access(IFETCH, 0x1000)
        assert system.instructions == 1
        assert system.data_references == 0
        assert system.ilevel.stats.accesses == 1
        assert system.dlevel.stats.accesses == 0

    def test_loads_and_stores_go_to_dcache(self):
        system = MemorySystem()
        system.access(LOAD, 0x1000)
        system.access(STORE, 0x1000)
        assert system.data_references == 2
        assert system.dlevel.stats.accesses == 2

    def test_split_caches_do_not_interfere(self):
        system = MemorySystem()
        system.access(IFETCH, 0x1000)
        assert system.access(LOAD, 0x1000) is AccessOutcome.MISS
        assert system.access(IFETCH, 0x1000) is AccessOutcome.HIT


class TestL2:
    def test_l1_miss_reaches_l2(self):
        system = MemorySystem()
        system.access(LOAD, 0x2000)
        assert system.l2stats.demand_accesses == 1
        assert system.l2stats.demand_misses == 1

    def test_l1_hit_does_not_touch_l2(self):
        system = MemorySystem()
        system.access(LOAD, 0x2000)
        system.access(LOAD, 0x2000)
        assert system.l2stats.demand_accesses == 1

    def test_l2_line_granularity(self):
        # Two L1 lines inside one 128B L2 line: second L1 miss hits L2.
        system = MemorySystem()
        system.access(LOAD, 0x2000)
        system.access(LOAD, 0x2000 + 64)
        assert system.l2stats.demand_accesses == 2
        assert system.l2stats.demand_misses == 1

    def test_removed_miss_does_not_touch_l2(self):
        system = MemorySystem(daugmentation=VictimCache(2))
        system.access(LOAD, 0)
        system.access(LOAD, 4096)   # evicts line 0 into VC
        demand_before = system.l2stats.demand_accesses
        assert system.access(LOAD, 0) is AccessOutcome.VICTIM_HIT
        assert system.l2stats.demand_accesses == demand_before

    def test_prewarm_l2(self):
        system = MemorySystem()
        trace = [(int(LOAD), 0x2000), (int(LOAD), 0x9000)]
        loaded = system.prewarm_l2(trace)
        assert loaded == 2
        system.access(LOAD, 0x2000)
        assert system.l2stats.demand_misses == 0
        assert system.l2stats.demand_accesses == 1


class TestStreamBufferPrefetchRouting:
    def test_prefetches_counted_as_l2_prefetch_traffic(self):
        system = MemorySystem(daugmentation=StreamBuffer(entries=4))
        system.access(LOAD, 0x4000)
        assert system.l2stats.prefetch_accesses > 0

    def test_multiway_buffers_also_wired(self):
        system = MemorySystem(daugmentation=MultiWayStreamBuffer(ways=2, entries=2))
        system.access(LOAD, 0x4000)
        assert system.l2stats.prefetch_accesses == 2

    def test_composite_members_wired(self):
        aug = CompositeAugmentation([VictimCache(2), StreamBuffer(entries=4)])
        system = MemorySystem(daugmentation=aug)
        system.access(LOAD, 0x4000)
        assert system.l2stats.prefetch_accesses == 4

    def test_wiring_can_be_disabled(self):
        system = MemorySystem(
            daugmentation=StreamBuffer(entries=4), route_prefetches_through_l2=False
        )
        system.access(LOAD, 0x4000)
        assert system.l2stats.prefetch_accesses == 0

    def test_prefetched_line_hits_l2_later(self):
        """A demand miss on a previously stream-prefetched line finds it
        resident in the L2 (prefetches keep L2 contents honest)."""
        system = MemorySystem(daugmentation=StreamBuffer(entries=4))
        system.access(LOAD, 0)          # prefetches L1 lines 1..4 through L2
        system.access(LOAD, 0x8000)     # flush the buffer far away
        before = system.l2stats.demand_misses
        system.access(LOAD, 0x8000 + 4096)  # same L1 set churn
        system.access(LOAD, 16)         # L1 line 1, L2 line 0: already loaded
        assert system.l2stats.demand_misses == before + 1  # only the 0x8000+4096 line


class TestRunAndResult:
    def test_run_counts_match_trace(self, small_by_name):
        trace = small_by_name["ccom"]
        system = MemorySystem()
        result = system.run(trace)
        stats = trace.stats()
        assert result.instructions == stats.instructions
        assert result.data_references == stats.data_references
        assert result.total_references == len(trace)

    def test_miss_rates_are_per_side(self):
        system = MemorySystem()
        system.access(IFETCH, 0)
        system.access(IFETCH, 0)
        system.access(LOAD, 0)
        result = system.result()
        assert result.imiss_rate == pytest.approx(0.5)
        assert result.dmiss_rate == pytest.approx(1.0)

    def test_effective_rates_discount_removed_misses(self):
        system = MemorySystem(daugmentation=VictimCache(2))
        system.access(LOAD, 0)
        system.access(LOAD, 4096)
        system.access(LOAD, 0)  # removed miss
        result = system.result()
        assert result.dmiss_rate == pytest.approx(1.0)
        assert result.effective_dmiss_rate == pytest.approx(2 / 3)

    def test_reset(self, small_by_name):
        system = MemorySystem()
        system.run(small_by_name["yacc"])
        system.reset()
        assert system.instructions == 0
        assert system.l2stats.demand_accesses == 0
        assert system.ilevel.stats.accesses == 0


def _same_counters(a: MemorySystem, b: MemorySystem) -> None:
    """Assert two systems agree on every externally visible counter."""
    assert a.instructions == b.instructions
    assert a.data_references == b.data_references
    assert a.ilevel.stats == b.ilevel.stats
    assert a.dlevel.stats == b.dlevel.stats
    assert a.l2stats == b.l2stats


class TestAccessRunParity:
    """``run()`` inlines ``access()``; the two must stay interchangeable."""

    def _pairs(self, small_by_name):
        return list(small_by_name["ccom"])

    def test_run_matches_pure_access_loop(self, small_by_name):
        pairs = self._pairs(small_by_name)
        via_access = MemorySystem()
        for kind, address in pairs:
            via_access.access(kind, address)
        via_run = MemorySystem()
        via_run.run(pairs)
        _same_counters(via_access, via_run)

    def test_interleaving_access_and_run_matches(self, small_by_name):
        pairs = self._pairs(small_by_name)
        third = len(pairs) // 3
        reference = MemorySystem()
        reference.run(pairs)
        mixed = MemorySystem()
        for kind, address in pairs[:third]:
            mixed.access(kind, address)
        mixed.run(pairs[third : 2 * third])
        for kind, address in pairs[2 * third :]:
            mixed.access(kind, address)
        _same_counters(reference, mixed)

    def test_interleaving_with_stream_buffer_matches(self, small_by_name):
        # Stream buffers exercise the pending-prefetch queue both paths
        # must drain identically.
        pairs = self._pairs(small_by_name)
        half = len(pairs) // 2
        reference = MemorySystem(daugmentation=StreamBuffer(entries=4))
        reference.run(pairs)
        mixed = MemorySystem(daugmentation=StreamBuffer(entries=4))
        mixed.run(pairs[:half])
        for kind, address in pairs[half:]:
            mixed.access(kind, address)
        _same_counters(reference, mixed)

    def test_raising_iterator_writes_back_counters(self, small_by_name):
        pairs = self._pairs(small_by_name)
        prefix = len(pairs) // 2

        def raising_trace():
            for pair in pairs[:prefix]:
                yield pair
            raise RuntimeError("trace source died")

        clean = MemorySystem()
        clean.run(pairs[:prefix])
        broken = MemorySystem()
        with pytest.raises(RuntimeError, match="trace source died"):
            broken.run(raising_trace())
        # The finally write-back must leave every counter exactly where a
        # clean run over the same prefix leaves it.
        _same_counters(clean, broken)

    def test_access_continues_consistently_after_mid_run_raise(self):
        def raising_trace():
            yield (int(LOAD), 0x2000)
            yield (int(IFETCH), 0x100)
            raise ValueError("boom")

        system = MemorySystem()
        with pytest.raises(ValueError):
            system.run(raising_trace())
        assert system.instructions == 1
        assert system.data_references == 1
        assert system.l2stats.demand_accesses == 2
        # The system remains usable and consistent via access().
        assert system.access(LOAD, 0x2000) is AccessOutcome.HIT
        assert system.data_references == 2
        assert system.l2stats.demand_accesses == 2


class TestL2StatsHashability:
    def test_equal_instances_hash_equal(self):
        assert L2Stats() == L2Stats()
        assert hash(L2Stats()) == hash(L2Stats())

    def test_usable_in_hash_containers(self):
        a, b = L2Stats(), L2Stats()
        b.demand_accesses = 7
        assert a != b
        assert len({a, b}) == 2
        assert {a: "baseline"}[L2Stats()] == "baseline"


class TestConfigVariants:
    def test_custom_config_respected(self):
        config = SystemConfig(
            icache=CacheConfig(1024, 16),
            dcache=CacheConfig(2048, 32),
        )
        system = MemorySystem(config)
        assert system.ilevel.cache.num_lines == 64
        assert system.dlevel.cache.num_lines == 64

    def test_default_is_baseline(self):
        assert MemorySystem().config == baseline_system()
