"""The declarative workload-spec hierarchy (PR 8).

Pins the contract :mod:`repro.specs.workloads` documents: specs are
frozen/hashable/picklable with canonical JSON; equal specs build
identical traces in any process; every spec-built trace carries
recoverable provenance in ``meta.source``; and — the acceptance test —
a ``TenantMixSpec`` job round-trips the whole stack (canonical JSON →
parallel engine → result store warm hit → ``repro-serve``) with no
serial fallback.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import pickle
import warnings

import pytest

from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.common.types import IFETCH, LOAD, STORE
from repro.experiments.engine import LevelJob, run_jobs
from repro.experiments.workloads import (
    default_scale,
    materialized_workload,
    validate_scale,
)
from repro.specs import (
    WORKLOAD_PRESETS,
    BurstySpec,
    HotspotSpec,
    NamedWorkloadSpec,
    PointerChaseSpec,
    SequentialSpec,
    SpecError,
    SystemSpec,
    TenantMixSpec,
    TraceSpec,
    UniformRandomSpec,
    WorkloadSpec,
    ZipfianSpec,
    parse_structure_code,
    parse_workload,
    registered_workload_kinds,
    unkeyed_reason,
    workload_from_dict,
    workload_from_json,
    workload_spec_of,
)
from repro.store import current_store
from repro.telemetry.core import MetricsScope, ParallelFallbackWarning
from repro.traces.registry import build_trace
from repro.traces.trace import Trace, TraceMeta


def take(iterator, n):
    return list(itertools.islice(iter(iterator), n))


#: One instance per registered kind, all with non-default fields, so the
#: round-trip tests cover every branch of (de)serialization.
SAMPLES = [
    NamedWorkloadSpec(name="linpack", scale=1_000, seed=2),
    SequentialSpec(length=500, extent=4096, stride=8, seed=1),
    UniformRandomSpec(length=500, working_set=8192, granule=8, seed=1),
    ZipfianSpec(length=500, keys=64, alpha=1.2, seed=1),
    HotspotSpec(length=500, working_set=8192, hot_fraction=0.1, seed=1),
    BurstySpec(length=500, working_set=4096, burst_prob=0.05, seed=1),
    PointerChaseSpec(length=500, nodes=32, seed=1),
    TenantMixSpec(
        tenants=(ZipfianSpec(length=200, keys=64), SequentialSpec(length=200)),
        length=400,
        alpha=1.0,
        phase_length=100,
        seed=3,
    ),
]

#: The pattern subset (everything that synthesizes its own stream).
PATTERN_SAMPLES = [spec for spec in SAMPLES if not isinstance(spec, NamedWorkloadSpec)]


class TestRoundTrips:
    def test_samples_cover_every_registered_kind(self):
        assert {type(s).kind for s in SAMPLES} == set(registered_workload_kinds())

    @pytest.mark.parametrize("spec", SAMPLES, ids=lambda s: s.kind)
    def test_dict_round_trip(self, spec):
        assert workload_from_dict(spec.as_dict()) == spec
        assert WorkloadSpec.from_dict(spec.as_dict()) == spec

    @pytest.mark.parametrize("spec", SAMPLES, ids=lambda s: s.kind)
    def test_json_round_trip_and_canonical_form(self, spec):
        text = spec.to_json()
        assert workload_from_json(text) == spec
        # Canonical: key-sorted, whitespace-free — equal specs always
        # serialize to byte-equal strings.
        assert text == json.dumps(json.loads(text), sort_keys=True, separators=(",", ":"))

    @pytest.mark.parametrize("spec", SAMPLES, ids=lambda s: s.kind)
    def test_pickle_and_hash(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert {spec: "v"}[clone] == "v"

    def test_legacy_nameless_payload_parses_as_named(self):
        # The old TraceSpec wire shape, still present in stored records.
        spec = workload_from_dict({"name": "linpack", "scale": 5})
        assert spec == NamedWorkloadSpec(name="linpack", scale=5, seed=0)

    def test_tenant_list_payload_coerces_to_tuple(self):
        payload = {
            "kind": "tenant_mix",
            "tenants": [ZipfianSpec(length=100, keys=16).as_dict()],
            "length": 100,
        }
        spec = workload_from_dict(payload)
        assert isinstance(spec.tenants, tuple)
        assert spec.tenants[0] == ZipfianSpec(length=100, keys=16)

    def test_unknown_kind_is_spec_error(self):
        with pytest.raises(SpecError, match="unknown workload kind"):
            workload_from_dict({"kind": "quantum"})

    def test_unknown_fields_are_spec_errors(self):
        with pytest.raises(SpecError, match="unknown fields"):
            workload_from_dict({"kind": "zipfian", "skew": 2})

    def test_non_mapping_payload_is_spec_error(self):
        with pytest.raises(SpecError, match="must be a mapping"):
            workload_from_dict([1, 2])

    def test_kindless_nameless_payload_is_spec_error(self):
        with pytest.raises(SpecError, match="no 'kind' tag"):
            workload_from_dict({"length": 5})

    def test_invalid_json_is_spec_error(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            workload_from_json("{nope")


class TestValidation:
    def test_rejects_nonpositive_length(self):
        with pytest.raises(SpecError, match="length"):
            ZipfianSpec(length=0)

    def test_rejects_bool_length(self):
        with pytest.raises(SpecError, match="length"):
            SequentialSpec(length=True)

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(SpecError, match="store_fraction"):
            HotspotSpec(store_fraction=1.5)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(SpecError, match="alpha"):
            ZipfianSpec(alpha=0)

    def test_tenant_mix_needs_tenants(self):
        with pytest.raises(SpecError, match="at least one tenant"):
            TenantMixSpec(tenants=())

    def test_tenant_mix_rejects_non_spec_tenants(self):
        with pytest.raises(SpecError, match="must be WorkloadSpecs"):
            TenantMixSpec(tenants=("zipfian",))

    def test_tenant_mix_rejects_negative_phase_length(self):
        with pytest.raises(SpecError, match="phase_length"):
            TenantMixSpec(tenants=(ZipfianSpec(),), phase_length=-1)


class TestDeterminism:
    @pytest.mark.parametrize("spec", PATTERN_SAMPLES, ids=lambda s: s.kind)
    def test_equal_specs_equal_streams(self, spec):
        clone = workload_from_json(spec.to_json())
        assert take(spec.pairs(), 300) == take(clone.pairs(), 300)

    @pytest.mark.parametrize("spec", PATTERN_SAMPLES, ids=lambda s: s.kind)
    def test_kinds_are_data_references(self, spec):
        kinds = {kind for kind, _ in take(spec.pairs(), 300)}
        assert kinds <= {int(LOAD), int(STORE)}
        assert int(IFETCH) not in kinds

    def test_seed_changes_stream(self):
        a = ZipfianSpec(length=500, keys=64, seed=1)
        b = ZipfianSpec(length=500, keys=64, seed=2)
        assert take(a.pairs(), 200) != take(b.pairs(), 200)

    def test_salt_decorrelates_draws(self):
        spec = UniformRandomSpec(length=500, working_set=8192, seed=1)
        assert take(spec.pairs(salt="a"), 200) != take(spec.pairs(salt="b"), 200)

    def test_tenant_addresses_never_alias(self):
        mix = TenantMixSpec(
            tenants=(ZipfianSpec(length=200, keys=16), SequentialSpec(length=200)),
            length=400,
            tenant_span=1 << 30,
            seed=1,
        )
        spans = {address >> 30 for _, address in take(mix.pairs(), 400)}
        assert spans <= {0, 1}
        assert len(spans) == 2, "both tenants must contribute references"

    def test_phase_churn_changes_the_stream(self):
        tenants = (ZipfianSpec(length=400, keys=16), SequentialSpec(length=400))
        static = TenantMixSpec(tenants=tenants, length=400, phase_length=0, seed=1)
        churning = TenantMixSpec(tenants=tenants, length=400, phase_length=100, seed=1)
        a, b = take(static.pairs(), 400), take(churning.pairs(), 400)
        assert a[:100] == b[:100], "identical until the first phase boundary"
        assert a[100:] != b[100:], "rotation must reassign popularity ranks"


class TestMaterialization:
    def test_build_stamps_canonical_provenance(self):
        spec = ZipfianSpec(length=300, keys=64, seed=9)
        trace = spec.build()
        assert trace.meta.source == spec.to_json()
        assert workload_spec_of(trace) == spec

    def test_build_length_matches_spec(self):
        spec = SequentialSpec(length=321, extent=4096)
        assert len(spec.build().materialize()) == 321

    def test_trace_is_memoized_by_value(self):
        a = HotspotSpec(length=300, working_set=4096, seed=11)
        b = workload_from_json(a.to_json())
        assert a.trace() is b.trace()
        assert a.trace() is materialized_workload(a)

    def test_different_seed_different_memo_entry(self):
        a = HotspotSpec(length=300, working_set=4096, seed=12)
        b = HotspotSpec(length=300, working_set=4096, seed=13)
        assert a.trace() is not b.trace()

    def test_fingerprint_pins_content(self):
        a = PointerChaseSpec(length=300, nodes=32, seed=4)
        assert a.fingerprint() == workload_from_json(a.to_json()).fingerprint()
        assert a.fingerprint() != PointerChaseSpec(length=300, nodes=32, seed=5).fingerprint()

    def test_named_spec_resolves_ambient_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1234")
        assert NamedWorkloadSpec(name="linpack").resolve() == NamedWorkloadSpec(
            name="linpack", scale=1234, seed=0
        )

    def test_pattern_specs_resolve_to_themselves(self):
        spec = BurstySpec(length=300)
        assert spec.resolve() is spec


class TestProvenanceRecovery:
    """Satellite: ``of()`` separates hand-made traces from keyable ones."""

    def test_registry_trace_round_trips(self):
        trace = build_trace("linpack", 800, seed=1)
        assert workload_spec_of(trace) == NamedWorkloadSpec(name="linpack", scale=800, seed=1)
        assert TraceSpec.of(trace) == NamedWorkloadSpec(name="linpack", scale=800, seed=1)

    def test_registry_trace_at_scale_zero_is_still_keyed(self):
        # The old path conflated "hand-made" with "scale 0": both had
        # falsy meta.scale and lost their spec.  Stamped provenance
        # keeps a zero-scale registry build keyable.
        trace = build_trace("linpack", 0, seed=0)
        assert workload_spec_of(trace) == NamedWorkloadSpec(name="linpack", scale=0, seed=0)

    def _hand_made(self, name="custom", scale=0, source=""):
        meta = TraceMeta(name=name, program_type="test", scale=scale, source=source)
        return Trace(meta, lambda: iter([(int(LOAD), 64)])).materialize()

    def test_hand_made_trace_has_no_spec(self):
        trace = self._hand_made()
        assert workload_spec_of(trace) is None
        assert "hand-made" in unkeyed_reason(trace)

    def test_scale_zero_registry_meta_without_provenance(self):
        # Distinct from hand-made: the name is rebuildable, the scale
        # record just predates provenance stamping.
        trace = self._hand_made(name="linpack", scale=0)
        assert workload_spec_of(trace) is None
        assert "scale 0 without recorded provenance" in unkeyed_reason(trace)

    def test_unparseable_provenance_is_reported_as_such(self):
        trace = self._hand_made(source="{bogus")
        assert workload_spec_of(trace) is None
        assert "unparseable workload provenance" in unkeyed_reason(trace)

    def test_legacy_registry_meta_with_scale_recovers(self):
        trace = self._hand_made(name="linpack", scale=700)
        assert workload_spec_of(trace) == NamedWorkloadSpec(name="linpack", scale=700, seed=0)

    def test_metaless_object_has_no_spec(self):
        assert workload_spec_of(object()) is None
        assert "no trace metadata" in unkeyed_reason(object())

    def test_fallback_warning_names_the_reason(self):
        from repro.experiments.sweeps import batch_entry_sweeps

        trace = self._hand_made()
        with pytest.warns(ParallelFallbackWarning) as caught:
            batch_entry_sweeps(
                [trace], CacheConfig(1024, 16), kind="victim", sides=("d",),
                max_entries=2, jobs=4,
            )
        message = str(caught[0].message)
        assert "trace(s) without a workload spec" in message
        assert "hand-made" in message


class TestScaleValidation:
    """Satellite: malformed ``REPRO_SCALE`` is a clean configuration error."""

    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale() is None

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2048")
        assert default_scale() == 2048

    @pytest.mark.parametrize("raw", ["abc", "1.5", "-5", "0"])
    def test_malformed_or_nonpositive_env_raises(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SCALE", raw)
        with pytest.raises(ConfigurationError, match="REPRO_SCALE"):
            default_scale()

    def test_validate_scale_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2048")
        assert validate_scale(None) == 2048
        assert validate_scale(7) == 7

    def test_validate_scale_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError, match="scale must be positive"):
            validate_scale(0)


class TestParseWorkload:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_PRESETS))
    def test_presets_parse(self, name):
        assert parse_workload(name) == WORKLOAD_PRESETS[name]

    def test_inline_json_parses(self):
        spec = ZipfianSpec(length=500, keys=64)
        assert parse_workload(spec.to_json()) == spec

    def test_registry_name_parses_as_named(self):
        assert parse_workload("linpack") == NamedWorkloadSpec(name="linpack")

    def test_unknown_name_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            parse_workload("definitely_not_a_workload")

    def test_spec_error_is_a_configuration_error(self):
        # The CLI's exit-2 boundary catches ConfigurationError only.
        with pytest.raises(ConfigurationError):
            parse_workload('{"kind": "quantum"}')


class TestTelemetryWorkloads:
    def test_run_record_embeds_replayable_specs(self):
        from repro.common.config import baseline_system
        from repro.telemetry.record import build_run_record, validate_record

        spec = WORKLOAD_PRESETS["zipfian"]
        record = build_run_record(
            MetricsScope(), "x", baseline_system(), 0.1, workloads=[spec]
        )
        payload = record.as_dict()
        validate_record(payload)
        assert [workload_from_dict(w) for w in payload["workloads"]] == [spec]

    def test_records_without_workloads_still_validate(self):
        from repro.common.config import baseline_system
        from repro.telemetry.record import build_run_record, validate_record

        record = build_run_record(MetricsScope(), "x", baseline_system(), 0.1)
        payload = record.as_dict()
        assert payload["workloads"] == []
        validate_record(payload)

    def test_non_dict_workload_entries_rejected(self):
        from repro.common.config import baseline_system
        from repro.telemetry.record import build_run_record, validate_record

        payload = build_run_record(MetricsScope(), "x", baseline_system(), 0.1).as_dict()
        payload["workloads"] = ["zipfian"]
        with pytest.raises(ValueError, match="workloads"):
            validate_record(payload)


MIX = TenantMixSpec(
    tenants=(
        ZipfianSpec(length=400, keys=64, seed=5),
        SequentialSpec(length=400, extent=4096, seed=5),
    ),
    length=800,
    phase_length=200,
    seed=5,
)
E2E_CACHE = CacheConfig(1024, 16)


class TestEndToEnd:
    """Acceptance: a TenantMixSpec job crosses every layer with no
    serial fallback — spec → canonical JSON → parallel engine →
    result-store warm hit → repro-serve answered from the store."""

    @pytest.fixture
    def store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        yield current_store()

    def _jobs(self):
        spec = workload_from_json(MIX.to_json())  # the wire round trip
        assert spec == MIX
        jobs = []
        for workload in (spec, ZipfianSpec(length=400, keys=64, seed=5)):
            for structure in (None, parse_structure_code("vc4")):
                system = SystemSpec.for_level(
                    workload, E2E_CACHE, side="d", structure=structure
                )
                assert system is not None
                jobs.append(LevelJob(system))
        return jobs

    def test_mix_round_trips_engine_store_and_serve(self, store):
        heartbeats = []
        with warnings.catch_warnings():
            warnings.simplefilter("error", ParallelFallbackWarning)
            cold = run_jobs(self._jobs(), jobs=4, progress=heartbeats.append)
        assert len(cold) == 4
        assert store.stats().entries >= 4

        # Rerun: every point must be answered from the store, not
        # simulated — the fully-warm batch reports hits == total.
        heartbeats.clear()
        warm = run_jobs(self._jobs(), jobs=4, progress=heartbeats.append)
        assert [s.miss_rate for s in warm] == [s.miss_rate for s in cold]
        assert heartbeats[-1].store_hits == len(warm)

        # Serve the same point: inline workload-spec JSON in the query,
        # answered warm from the same store.
        from repro.serve.daemon import CacheAdvisorDaemon, ServeConfig
        from repro.serve.httpio import request_json

        async def check():
            daemon = CacheAdvisorDaemon(ServeConfig(port=0))
            await daemon.start()
            try:
                status, _, body = await request_json(
                    "127.0.0.1",
                    daemon.port,
                    "POST",
                    "/v1/advise",
                    {
                        "trace": MIX.as_dict(),
                        "structure": "vc4",
                        "side": "d",
                        "warmup": 0,
                        "cache": {
                            "size_bytes": E2E_CACHE.size_bytes,
                            "line_size": E2E_CACHE.line_size,
                        },
                    },
                    timeout=60,
                )
            finally:
                await daemon.aclose()
            return status, body

        status, body = asyncio.run(check())
        assert status == 200
        assert body["served_from"] == "store"
