"""Unit and property tests for the victim cache (paper §3.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.miss_cache import MissCache
from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig
from repro.common.types import AccessOutcome
from repro.hierarchy.level import CacheLevel

lines = st.integers(min_value=0, max_value=600)


def drive(level, pattern):
    for line in pattern:
        level.access_line(line)


class TestVictimCacheAlone:
    def test_caches_victim_not_requested(self):
        vc = VictimCache(2)
        vc.lookup_on_miss(7, 0)
        vc.on_l1_fill(7, victim=3, now=0)
        assert vc.contains(3)
        assert not vc.contains(7)

    def test_no_insert_without_victim(self):
        vc = VictimCache(2)
        vc.lookup_on_miss(7, 0)
        vc.on_l1_fill(7, victim=None, now=0)
        assert vc.occupancy() == 0

    def test_hit_swaps_out_of_victim_cache(self):
        vc = VictimCache(2)
        vc.on_l1_fill(1, victim=9, now=0)
        result = vc.lookup_on_miss(9, 1)
        assert result.satisfied
        assert result.outcome is AccessOutcome.VICTIM_HIT
        assert not vc.contains(9)  # moved into L1

    def test_no_swap_variant_keeps_copy(self):
        vc = VictimCache(2, swap_on_hit=False)
        vc.on_l1_fill(1, victim=9, now=0)
        assert vc.lookup_on_miss(9, 1).satisfied
        assert vc.contains(9)

    def test_counters_and_reset(self):
        vc = VictimCache(2, track_depths=True)
        vc.on_l1_fill(1, victim=9, now=0)
        vc.lookup_on_miss(9, 1)
        assert vc.hits == 1 and vc.lookups == 1
        vc.reset()
        assert vc.hits == 0 and vc.occupancy() == 0
        assert vc.hit_depths.total() == 0


class TestVictimCacheBehindLevel:
    def test_one_entry_suffices_for_pairwise_alternation(self, l1_config):
        """§3.2: victim caches of just one line are useful."""
        a, b = 0, 256
        pattern = [a, b] * 40
        level = CacheLevel(l1_config, VictimCache(1))
        drive(level, pattern)
        assert level.stats.outcomes[AccessOutcome.VICTIM_HIT] == len(pattern) - 2

    def test_exclusivity_invariant_on_conflict_pattern(self, l1_config):
        level = CacheLevel(l1_config, VictimCache(4))
        drive(level, [0, 256, 512, 0, 256, 512] * 20)
        vc_lines = set(level.augmentation.resident_lines())
        l1_lines = set(level.cache.resident_lines())
        assert not (vc_lines & l1_lines)

    def test_loop_plus_procedure_doubles_capture(self, l1_config):
        """§3.2's example: conflicting loop and procedure trade places."""
        # Loop body: lines 0..3; procedure: lines 256..259 (same sets).
        iteration = list(range(0, 4)) + list(range(256, 260))
        pattern = iteration * 30
        # 4-entry victim cache captures the full 4-line overlap.
        vc_level = CacheLevel(l1_config, VictimCache(4))
        drive(vc_level, pattern)
        vc_removed = vc_level.stats.outcomes[AccessOutcome.VICTIM_HIT]
        # A 4-entry miss cache thrashes: each fill inserts the requested
        # line, so by the time the loop comes back its lines are gone.
        mc_level = CacheLevel(l1_config, MissCache(4))
        drive(mc_level, pattern)
        mc_removed = mc_level.stats.outcomes[AccessOutcome.MISS_CACHE_HIT]
        assert vc_removed > mc_removed
        assert vc_removed >= len(pattern) - 2 * 8  # everything after warmup


class TestVictimProperties:
    @settings(deadline=None, max_examples=40)
    @given(refs=st.lists(lines, max_size=600))
    def test_exclusivity_holds_always(self, refs):
        config = CacheConfig(1024, 16)  # 64 sets
        level = CacheLevel(config, VictimCache(4))
        for line in refs:
            level.access_line(line)
            vc_lines = set(level.augmentation.resident_lines())
            assert all(not level.cache.probe(line_addr) for line_addr in vc_lines)

    @settings(deadline=None, max_examples=40)
    @given(refs=st.lists(lines, max_size=600), entries=st.integers(min_value=1, max_value=6))
    def test_victim_never_worse_than_miss_cache(self, refs, entries):
        """The paper's §3.2 claim, on arbitrary reference streams."""
        config = CacheConfig(1024, 16)
        vc_level = CacheLevel(config, VictimCache(entries))
        mc_level = CacheLevel(config, MissCache(entries))
        for line in refs:
            vc_level.access_line(line)
            mc_level.access_line(line)
        assert (
            vc_level.stats.removed_misses >= mc_level.stats.removed_misses
        )

    @settings(deadline=None, max_examples=40)
    @given(refs=st.lists(lines, max_size=600))
    def test_l1_state_independent_of_victim_cache(self, refs):
        config = CacheConfig(1024, 16)
        plain = CacheLevel(config)
        with_vc = CacheLevel(config, VictimCache(3))
        for line in refs:
            plain.access_line(line)
            with_vc.access_line(line)
        assert sorted(plain.cache.resident_lines()) == sorted(
            with_vc.cache.resident_lines()
        )
        assert plain.stats.demand_misses == with_vc.stats.demand_misses

    @settings(deadline=None, max_examples=30)
    @given(refs=st.lists(lines, max_size=400))
    def test_more_entries_never_fewer_hits(self, refs):
        config = CacheConfig(1024, 16)
        removed = []
        for entries in (1, 2, 4, 8):
            level = CacheLevel(config, VictimCache(entries))
            for line in refs:
                level.access_line(line)
            removed.append(level.stats.removed_misses)
        assert removed == sorted(removed)
