"""repro-serve: routes, warm/cold paths, coalescing, admission, streaming.

Engine-independent behaviours (coalescing, overload, heartbeats) pin the
service against a controllable fake ``run_jobs`` — monkeypatched at
``repro.serve.service.run_jobs``, where ``_simulate`` resolves it — so
the tests are deterministic and fast.  The cold→warm transition and the
small loadgen round trip use the real engine at a tiny scale.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.experiments.engine import LevelSummary
from repro.serve import daemon as daemon_mod
from repro.serve import service as service_mod
from repro.serve.cli import main as serve_main
from repro.serve.daemon import CacheAdvisorDaemon, ServeConfig
from repro.serve.httpio import (
    HttpError,
    JsonClient,
    Request,
    request_json,
    stream_json_events,
)
from repro.serve.loadgen import (
    ClassReport,
    LoadReport,
    check_coalescing,
    percentiles,
    run_loadgen,
)
from repro.serve.loadgen import main as loadgen_main
from repro.store import current_store

SCALE = 1_500

#: What the fake engine "computes" — any valid LevelSummary will do.
SUMMARY = LevelSummary(
    accesses=100, demand_misses=10, removed_misses=4, misses_to_next_level=6
)


@pytest.fixture
def store(tmp_path, monkeypatch):
    """An activated result store rooted in a temp dir."""
    monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
    yield current_store()


class FakeEngine:
    """A ``run_jobs`` stand-in: counts calls, can hold jobs hostage."""

    def __init__(self) -> None:
        self.calls = 0
        self.started = threading.Event()
        self.release = threading.Event()
        self.release.set()

    def __call__(self, job_list, **kwargs):
        self.calls += 1
        self.started.set()
        assert self.release.wait(30), "test never released the fake engine"
        return [SUMMARY for _ in job_list]


@pytest.fixture
def fake_engine(monkeypatch):
    fake = FakeEngine()
    monkeypatch.setattr(service_mod, "run_jobs", fake)
    return fake


def serve_test(coro_fn, **config):
    """Run ``coro_fn(daemon)`` against a live daemon on an ephemeral port."""

    async def runner():
        daemon = CacheAdvisorDaemon(ServeConfig(port=0, **config))
        await daemon.start()
        try:
            return await coro_fn(daemon)
        finally:
            await daemon.aclose()

    return asyncio.run(runner())


def query(warmup: int = 0, **over):
    q = {
        "trace": {"name": "linpack", "scale": SCALE, "seed": 0},
        "structure": "vc4",
        "side": "d",
        "warmup": warmup,
    }
    q.update(over)
    return q


async def advise(daemon, payload, timeout=60.0):
    return await request_json(
        "127.0.0.1", daemon.port, "POST", "/v1/advise", payload, timeout=timeout
    )


class TestRoutes:
    def test_healthz(self, store):
        async def check(daemon):
            status, _, body = await request_json(
                "127.0.0.1", daemon.port, "GET", "/healthz", timeout=10
            )
            assert status == 200
            assert body == {"status": "ok", "inflight": 0}

        serve_test(check)

    def test_unknown_path_is_404(self, store):
        async def check(daemon):
            status, _, body = await request_json(
                "127.0.0.1", daemon.port, "GET", "/nope", timeout=10
            )
            assert status == 404 and "/nope" in body["error"]

        serve_test(check)

    def test_wrong_method_is_405(self, store):
        async def check(daemon):
            status, _, _ = await request_json(
                "127.0.0.1", daemon.port, "PUT", "/healthz", timeout=10
            )
            assert status == 405

        serve_test(check)

    def test_invalid_json_body_is_400(self, store):
        async def check(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            body = b"not json!"
            writer.write(
                b"POST /v1/advise HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10)
            writer.close()
            assert raw.startswith(b"HTTP/1.1 400 ")

        serve_test(check)

    def test_unknown_workload_is_400(self, store):
        async def check(daemon):
            status, _, body = await advise(daemon, query(trace={"name": "no-such"}))
            assert status == 400
            assert "unknown workload" in body["error"]
            # KeyError repr quotes must not leak into the message.
            assert not body["error"].startswith('"')

        serve_test(check)

    def test_missing_trace_is_400(self, store):
        async def check(daemon):
            status, _, body = await advise(daemon, {"structure": "vc4"})
            assert status == 400 and "trace" in body["error"]

        serve_test(check)

    def test_request_json_helper_rejects_bad_bodies(self):
        with pytest.raises(HttpError):
            Request(method="POST", path="/", query="", body=b"{nope").json()


class TestColdThenWarm:
    def test_second_query_is_a_store_hit(self, store):
        async def check(daemon):
            status1, _, first = await advise(daemon, query())
            status2, _, second = await advise(daemon, query())
            assert (status1, status2) == (200, 200)
            assert first["served_from"] == "simulated"
            assert second["served_from"] == "store"
            # Identical identity and identical result both times.
            assert first["key_digest"] == second["key_digest"]
            assert first["spec_hash"] == second["spec_hash"]
            assert first["result"] == second["result"]
            assert second["summary"]["miss_rate"] > 0
            counters = daemon.service.counters
            assert counters.requests == 2
            assert counters.cold_misses == 1
            assert counters.warm_hits == 1
            return daemon.service.store

        used = serve_test(check)
        assert used.stats().entries == 1  # the engine flushed exactly one result

    def test_explicit_store_warms_without_env_store(self, tmp_path, monkeypatch):
        """Regression: with ``store=`` passed explicitly and no
        ``REPRO_RESULT_STORE``, the engine flushes nowhere — the service
        must flush its own store or cold keys never warm."""
        from repro.store import ResultStore

        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)

        async def check():
            daemon = CacheAdvisorDaemon(
                ServeConfig(port=0), store=ResultStore(tmp_path / "serve-only")
            )
            await daemon.start()
            try:
                _, _, first = await advise(daemon, query())
                _, _, second = await advise(daemon, query())
            finally:
                await daemon.aclose()
            assert first["served_from"] == "simulated"
            assert second["served_from"] == "store"

        asyncio.run(check())


class TestCoalescing:
    def test_duplicate_burst_runs_one_simulation(self, store, fake_engine):
        fake_engine.release.clear()

        async def check(daemon):
            loop = asyncio.get_running_loop()
            burst = [asyncio.ensure_future(advise(daemon, query(warmup=7))) for _ in range(5)]
            await loop.run_in_executor(None, fake_engine.started.wait, 10)
            # Hold the engine until every duplicate has attached to the
            # single inflight entry — releasing earlier would let a slow
            # connection arrive after the result landed in the store and
            # be (correctly, but unhelpfully for this test) served warm.
            deadline = loop.time() + 10
            while daemon.service.counters.coalesced < 4:
                assert loop.time() < deadline, "duplicates never coalesced"
                await asyncio.sleep(0.01)
            assert daemon.service.inflight == 1
            fake_engine.release.set()
            outcomes = await asyncio.gather(*burst)
            assert [status for status, _, _ in outcomes] == [200] * 5
            sources = sorted(body["served_from"] for _, _, body in outcomes)
            assert sources == ["coalesced"] * 4 + ["simulated"]
            assert daemon.service.counters.coalesced == 4
            assert daemon.service.counters.cold_misses == 1

        serve_test(check)
        assert fake_engine.calls == 1

    def test_distinct_keys_do_not_coalesce(self, store, fake_engine):
        async def check(daemon):
            outcomes = await asyncio.gather(
                advise(daemon, query(warmup=1)), advise(daemon, query(warmup=2))
            )
            assert [status for status, _, _ in outcomes] == [200, 200]
            assert daemon.service.counters.coalesced == 0

        serve_test(check)
        assert fake_engine.calls == 2


class TestAdmissionControl:
    def test_saturated_daemon_rejects_new_cold_keys(self, store, fake_engine):
        fake_engine.release.clear()

        async def check(daemon):
            loop = asyncio.get_running_loop()
            blocked = asyncio.ensure_future(advise(daemon, query(warmup=1)))
            await loop.run_in_executor(None, fake_engine.started.wait, 10)

            # A *different* cold key is turned away with retry guidance...
            status, headers, body = await advise(daemon, query(warmup=2))
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert body["retry_after_s"] >= 1
            # ...but a duplicate of the blocked key still coalesces...
            follower = asyncio.ensure_future(advise(daemon, query(warmup=1)))
            await asyncio.sleep(0.05)
            assert daemon.service.counters.coalesced == 1
            # ...and a warm key is still served: admission only guards sims.
            warm_spec = service_mod.parse_query(query(warmup=3)).spec
            _, warm_key, _ = await loop.run_in_executor(
                None, daemon.service._lookup, warm_spec
            )
            daemon.service.store.put(warm_key, SUMMARY)
            status, _, warm = await advise(daemon, query(warmup=3))
            assert status == 200 and warm["served_from"] == "store"

            fake_engine.release.set()
            (status1, _, _), (status2, _, _) = await asyncio.gather(blocked, follower)
            assert (status1, status2) == (200, 200)
            assert daemon.service.counters.rejected == 1

        serve_test(check, max_inflight=1)
        assert fake_engine.calls == 1


class TestStreaming:
    def test_cold_stream_heartbeats_then_result(self, store, fake_engine):
        fake_engine.release.clear()

        async def check(daemon):
            loop = asyncio.get_running_loop()
            collected = asyncio.ensure_future(
                stream_json_events(
                    "127.0.0.1", daemon.port, "/v1/advise",
                    query(warmup=5, stream=True), timeout=30,
                )
            )
            await loop.run_in_executor(None, fake_engine.started.wait, 10)
            await asyncio.sleep(0.15)  # let a few heartbeats tick
            fake_engine.release.set()
            status, events = await collected
            assert status == 200
            kinds = [event["event"] for event in events]
            assert kinds[0] == "accepted" and events[0]["served_from"] == "simulated"
            assert kinds[-1] == "result"
            assert kinds.count("heartbeat") >= 1
            assert events[-1]["served_from"] == "simulated"
            assert daemon.service.counters.streams == 1

        serve_test(check, heartbeat=0.02)

    def test_warm_stream_skips_straight_to_result(self, store):
        async def check(daemon):
            await advise(daemon, query())  # prime the key (real engine)
            status, events = await stream_json_events(
                "127.0.0.1", daemon.port, "/v1/advise",
                query(stream=True), timeout=30,
            )
            assert status == 200
            assert [event["event"] for event in events] == ["accepted", "result"]
            assert events[-1]["served_from"] == "store"

        serve_test(check)

    def test_rejected_stream_gets_http_429(self, store, fake_engine):
        fake_engine.release.clear()

        async def check(daemon):
            loop = asyncio.get_running_loop()
            blocked = asyncio.ensure_future(advise(daemon, query(warmup=1)))
            await loop.run_in_executor(None, fake_engine.started.wait, 10)
            status, events = await stream_json_events(
                "127.0.0.1", daemon.port, "/v1/advise",
                query(warmup=2, stream=True), timeout=30,
            )
            assert status == 429  # rejected before the stream starts
            assert "retry_after_s" in events[0]
            fake_engine.release.set()
            status, _, _ = await blocked
            assert status == 200

        serve_test(check, max_inflight=1)


class TestKeepAlive:
    def test_wants_keep_alive_semantics(self):
        def req(version, connection=None):
            headers = {} if connection is None else {"connection": connection}
            return Request(method="GET", path="/", query="", headers=headers,
                           version=version)

        assert req("HTTP/1.1").wants_keep_alive
        assert req("HTTP/1.1", "keep-alive").wants_keep_alive
        assert not req("HTTP/1.1", "close").wants_keep_alive
        assert not req("HTTP/1.0").wants_keep_alive
        assert req("HTTP/1.0", "keep-alive").wants_keep_alive

    def test_sequential_requests_reuse_one_connection(self, store):
        async def check(daemon):
            async with JsonClient("127.0.0.1", daemon.port) as client:
                status1, headers1, body1 = await client.request(
                    "GET", "/healthz", timeout=10
                )
                status2, _, body2 = await client.request("GET", "/v1/stats", timeout=10)
                assert (status1, status2) == (200, 200)
                assert headers1["connection"] == "keep-alive"
                assert body1["status"] == "ok"
                assert body2["serving"]["requests"] == 0
                assert client.reused == 1  # second round trip reused the socket

        serve_test(check)

    def test_raw_pipeline_of_two_requests(self, store):
        """Two requests written on one raw socket are both answered."""

        async def check(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            head = (
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                b"Connection: keep-alive\r\nContent-Length: 0\r\n\r\n"
            )
            writer.write(head)
            await writer.drain()
            first = await asyncio.wait_for(reader.readuntil(b"}"), 10)
            assert first.startswith(b"HTTP/1.1 200 ")
            writer.write(head.replace(b"keep-alive", b"close"))
            await writer.drain()
            rest = await asyncio.wait_for(reader.read(), 10)
            assert rest.startswith(b"HTTP/1.1 200 ")
            assert b"Connection: close" in rest  # second reply ends the session
            writer.close()

        serve_test(check)

    def test_connection_close_is_honored(self, store):
        async def check(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                b"Connection: close\r\nContent-Length: 0\r\n\r\n"
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10)  # EOF: server closed
            assert raw.startswith(b"HTTP/1.1 200 ")
            assert b"Connection: close" in raw
            writer.close()

        serve_test(check)

    def test_http_10_closes_by_default(self, store):
        async def check(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            writer.write(b"GET /healthz HTTP/1.0\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10)
            assert raw.startswith(b"HTTP/1.1 200 ")
            assert b"Connection: close" in raw
            writer.close()

        serve_test(check)

    def test_idle_timeout_expires_and_client_recovers(self, store):
        async def check(daemon):
            async with JsonClient("127.0.0.1", daemon.port) as client:
                status, _, _ = await client.request("GET", "/healthz", timeout=10)
                assert status == 200
                await asyncio.sleep(0.4)  # past the 0.1s idle timeout
                # The stale socket is detected and the request retried fresh.
                status, _, _ = await client.request("GET", "/healthz", timeout=10)
                assert status == 200

        serve_test(check, keepalive_timeout=0.1)


class TestNegativeCache:
    def test_repeated_bad_query_is_served_from_cache(self, store):
        parse_calls = 0
        real_parse = daemon_mod.parse_query

        def counting_parse(payload):
            nonlocal parse_calls
            parse_calls += 1
            return real_parse(payload)

        bad = {"structure": "vc4"}  # valid JSON, but no trace: a 400

        async def check(daemon):
            daemon_mod.parse_query = counting_parse
            try:
                status1, _, body1 = await advise(daemon, bad, timeout=10)
                status2, _, body2 = await advise(daemon, bad, timeout=10)
            finally:
                daemon_mod.parse_query = real_parse
            assert (status1, status2) == (400, 400)
            assert body1 == body2  # byte-identical cached 400 body
            assert parse_calls == 1  # the retry never re-parsed
            assert daemon.service.counters.negative_hits == 1

        serve_test(check)

    def test_negative_entries_persist_across_daemons(self, store):
        bad = {"trace": {"name": "no-such-workload"}}

        async def first(daemon):
            status, _, body = await advise(daemon, bad, timeout=10)
            assert status == 400
            return body

        async def second(daemon):
            status, _, body = await advise(daemon, bad, timeout=10)
            assert status == 400
            assert daemon.service.counters.negative_hits == 1
            return body

        assert serve_test(first) == serve_test(second)

    def test_malformed_json_bytes_are_cached_too(self, store):
        async def roundtrip(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            body = b"{nope"
            writer.write(
                b"POST /v1/advise HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10)
            writer.close()
            return raw

        async def check(daemon):
            first = await roundtrip(daemon)
            second = await roundtrip(daemon)
            assert first.startswith(b"HTTP/1.1 400 ")
            assert second.startswith(b"HTTP/1.1 400 ")
            assert daemon.service.counters.negative_hits == 1

        serve_test(check)

    def test_good_queries_never_touch_the_negative_cache(self, store):
        async def check(daemon):
            status, _, _ = await advise(daemon, query())
            assert status == 200
            assert daemon.service.counters.negative_hits == 0
            # And the stored entry is the result, not a rejection.
            assert daemon.service.store.stats().entries == 1

        serve_test(check)


class TestStatsAndMetrics:
    def test_stats_payload_shape(self, store):
        async def check(daemon):
            await advise(daemon, query())
            status, _, stats = await request_json(
                "127.0.0.1", daemon.port, "GET", "/v1/stats", timeout=10
            )
            assert status == 200
            assert stats["serving"]["requests"] == 1
            assert stats["serving"]["cold_misses"] == 1
            assert stats["max_inflight"] == 4
            assert stats["inflight"] == 0
            assert stats["retry_after_hint_s"] >= 1
            assert stats["store_root"] == str(daemon.service.store.root)
            assert stats["uptime_s"] >= 0

        serve_test(check)

    def test_shutdown_emits_validated_run_record(self, store, tmp_path):
        from repro.telemetry.record import read_records, validate_record

        metrics = tmp_path / "serve-runs.jsonl"

        async def check(daemon):
            await advise(daemon, query())
            await advise(daemon, query())

        serve_test(check, emit_metrics=str(metrics))
        records = list(read_records(str(metrics)))
        assert len(records) == 1
        validate_record(records[0].as_dict())
        assert records[0].run == "serve"
        assert records[0].serving["requests"] == 2
        assert records[0].serving["warm_hits"] == 1
        assert records[0].serving["cold_misses"] == 1


class TestCliValidation:
    def test_out_of_range_port_exits_2(self, capsys):
        assert serve_main(["--port", "70000"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_nonpositive_max_inflight_exits_2(self, capsys):
        assert serve_main(["--max-inflight", "0"]) == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_nonpositive_heartbeat_exits_2(self, capsys):
        assert serve_main(["--heartbeat", "-1"]) == 2
        assert "--heartbeat" in capsys.readouterr().err

    def test_missing_store_exits_2(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert serve_main(["--port", "0"]) == 2
        assert "result store" in capsys.readouterr().err

    def test_loadgen_validation_exits_2(self, capsys):
        assert loadgen_main(["--port", "0"]) == 2
        assert loadgen_main(["--concurrency", "0"]) == 2
        capsys.readouterr()


class TestLoadgen:
    def test_percentiles_interpolate(self):
        pct = percentiles([float(value) for value in range(1, 101)])
        assert pct["p50"] == pytest.approx(50.5)
        assert pct["p95"] == pytest.approx(95.05)
        assert pct["p99"] == pytest.approx(99.01)
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_check_coalescing_flags_failures(self):
        bad = LoadReport(
            classes={
                "warm": ClassReport("warm", latencies_s=[0.1], served_from={"simulated": 1}),
                "cold": ClassReport("cold"),
                "duplicate": ClassReport(
                    "duplicate",
                    latencies_s=[0.1, 0.1],
                    served_from={"simulated": 2},
                ),
            },
            server_stats={"serving": {"coalesced": 0}},
            elapsed_s=1.0,
        )
        failures = check_coalescing(bad)
        assert len(failures) == 3  # warm source, simulation count, follower count

    def test_loadgen_round_trip_coalesces(self, store):
        async def check(daemon):
            return await run_loadgen(
                host="127.0.0.1",
                port=daemon.port,
                trace="linpack",
                scale=SCALE,
                seed=0,
                structure="vc4",
                warm_requests=4,
                cold_requests=1,
                duplicates=3,
                concurrency=4,
            )

        report = serve_test(check)
        assert check_coalescing(report) == []
        warm = report.classes["warm"]
        assert warm.served_from == {"store": 4}
        duplicate = report.classes["duplicate"]
        assert duplicate.served_from.get("simulated") == 1
        # 8 requests over at most 4 pooled connections: reuse must happen.
        assert report.reused_round_trips >= 4
