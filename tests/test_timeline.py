"""Tests for the cycle-approximate timeline simulator."""

from repro.buffers.stream_buffer import StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.config import baseline_system
from repro.common.types import IFETCH, LOAD
from repro.hierarchy.performance import evaluate_performance
from repro.hierarchy.system import MemorySystem
from repro.hierarchy.timeline import TimelineSimulator


class TestBasicAccounting:
    def test_hit_costs_one_cycle_per_instruction(self):
        sim = TimelineSimulator()
        trace = [(int(IFETCH), 0)] * 10
        result = sim.run(trace)
        # First fetch misses (24 + 320 L2), the rest are 1-cycle issues.
        assert result.instructions == 10
        assert result.cycles == 10 + 24 + 320

    def test_data_hits_are_free(self):
        sim = TimelineSimulator()
        sim.run([(int(LOAD), 0)])          # cold miss pays
        before = sim.now
        sim.run([(int(LOAD), 0)] * 5)      # hits overlap with issue
        assert sim.now == before

    def test_removed_miss_costs_one_cycle(self):
        sim = TimelineSimulator(daugmentation=VictimCache(2))
        sim.run([(int(LOAD), 0), (int(LOAD), 4096)])
        before = sim.now
        sim.run([(int(LOAD), 0)])          # victim hit
        assert sim.now == before + 1

    def test_l2_hit_avoids_l2_penalty(self):
        sim = TimelineSimulator()
        sim.run([(int(LOAD), 0)])          # L2 miss: 24 + 320
        before = sim.now
        sim.run([(int(LOAD), 4096)])       # conflicting L1 line, same L2 line? no
        # 4096 maps to a different L2 line; use a same-L2-line address:
        sim2 = TimelineSimulator()
        sim2.run([(int(LOAD), 0)])
        start = sim2.now
        sim2.run([(int(LOAD), 64)])        # same 128B L2 line, different L1 line
        assert sim2.now == start + 24      # L1 miss, L2 hit

    def test_prewarm_l2_removes_cold_l2_penalties(self):
        trace = [(int(LOAD), i * 4096) for i in range(8)]
        cold = TimelineSimulator()
        cold.run(trace)
        warm = TimelineSimulator()
        warm.prewarm_l2(trace)
        warm.run(trace)
        assert warm.result.l2_penalty_cycles == 0
        assert cold.result.l2_penalty_cycles > 0


class TestAvailabilityStalls:
    def test_back_to_back_stream_hits_stall(self):
        buffer = StreamBuffer(
            entries=4, model_availability=True, fill_latency=12, issue_interval=4
        )
        sim = TimelineSimulator(iaugmentation=buffer)
        # Sequential ifetches: line boundary every 4 instructions; the
        # very first post-allocation head may not be ready.
        trace = [(int(IFETCH), i * 4) for i in range(64)]
        result = sim.run(trace)
        assert result.availability_stall_cycles >= 0
        assert result.cycles >= result.instructions

    def test_stalls_zero_without_availability_model(self):
        sim = TimelineSimulator(iaugmentation=StreamBuffer(entries=4))
        trace = [(int(IFETCH), i * 4) for i in range(64)]
        result = sim.run(trace)
        assert result.availability_stall_cycles == 0


class TestAgreementWithAggregateModel:
    def test_matches_aggregate_without_availability(self, small_by_name):
        """With availability off, timeline cycles == aggregate total time
        (same penalties, same L2 contents, same order)."""
        trace = small_by_name["yacc"]
        timing = baseline_system().timing

        aggregate_system = MemorySystem(daugmentation=VictimCache(4))
        aggregate = evaluate_performance(aggregate_system.run(trace), timing)

        timeline = TimelineSimulator(daugmentation=VictimCache(4))
        result = timeline.run(trace)
        assert result.cycles == aggregate.total_time

    def test_matches_aggregate_with_stream_buffers(self, small_by_name):
        trace = small_by_name["linpack"]
        timing = baseline_system().timing
        aggregate_system = MemorySystem(daugmentation=StreamBuffer(4))
        aggregate = evaluate_performance(aggregate_system.run(trace), timing)
        timeline = TimelineSimulator(daugmentation=StreamBuffer(4))
        result = timeline.run(trace)
        assert result.cycles == aggregate.total_time

    def test_availability_only_adds_cycles(self, small_by_name):
        trace = small_by_name["ccom"]
        plain = TimelineSimulator(iaugmentation=StreamBuffer(4))
        plain_result = plain.run(trace)
        modelled = TimelineSimulator(
            iaugmentation=StreamBuffer(4, model_availability=True)
        )
        modelled_result = modelled.run(trace)
        assert modelled_result.cycles >= plain_result.cycles

    def test_percent_of_potential(self):
        sim = TimelineSimulator()
        result = sim.run([(int(IFETCH), 0)])
        assert 0.0 < result.percent_of_potential <= 100.0
