"""Tests for the six synthetic benchmark workloads and the registry."""

import pytest

from repro.common.errors import UnknownWorkloadError
from repro.traces.registry import (
    BENCHMARK_NAMES,
    DEFAULT_SCALE,
    build_suite,
    build_trace,
    get_workload,
    list_workloads,
)


class TestRegistry:
    def test_paper_presentation_order(self):
        assert BENCHMARK_NAMES == ["ccom", "grr", "yacc", "met", "linpack", "liver"]

    def test_get_workload(self):
        spec = get_workload("linpack")
        assert spec.program_type == "100x100 numeric"
        assert spec.data_per_instr == pytest.approx(0.281)

    def test_unknown_name(self):
        with pytest.raises(UnknownWorkloadError, match="nosuch"):
            get_workload("nosuch")

    def test_list_workloads(self):
        assert [spec.name for spec in list_workloads()] == BENCHMARK_NAMES

    def test_relative_lengths_match_table_2_1(self):
        # grr is the longest trace, liver the shortest (Table 2-1).
        lengths = {spec.name: spec.relative_length for spec in list_workloads()}
        assert lengths["linpack"] > lengths["grr"] > lengths["met"] > lengths["ccom"]
        assert min(lengths, key=lengths.get) == "liver"

    def test_default_scale_applied(self):
        trace = build_trace("ccom")
        assert trace.meta.scale == int(DEFAULT_SCALE * 1.0)

    def test_build_suite_materialized(self):
        suite = list(build_suite(scale=500))
        assert [t.name for t in suite] == BENCHMARK_NAMES
        assert all(len(t) > 0 for t in suite)

    def test_build_suite_lazy(self):
        suite = list(build_suite(scale=500, materialize=False))
        assert all(hasattr(t, "materialize") for t in suite)


class TestDeterminism:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_same_seed_same_trace(self, name):
        a = list(build_trace(name, scale=800, seed=3))
        b = list(build_trace(name, scale=800, seed=3))
        assert a == b

    def test_different_seed_different_trace(self):
        a = list(build_trace("ccom", scale=800, seed=0))
        b = list(build_trace("ccom", scale=800, seed=1))
        assert a != b

    def test_trace_object_replays(self):
        trace = build_trace("met", scale=800)
        assert list(trace) == list(trace)


class TestTable21Ratios:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_data_per_instruction_matches_spec(self, name, small_by_name):
        spec = get_workload(name)
        stats = small_by_name[name].stats()
        assert stats.data_per_instruction == pytest.approx(spec.data_per_instr, abs=0.01)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_instruction_count_near_scale(self, name, small_by_name):
        stats = small_by_name[name].stats()
        assert stats.instructions == pytest.approx(4000, rel=0.02)


class TestTable22MissRateBands:
    """The calibration bands: ours within a factor-ish of Table 2-2.

    These are deliberately loose — the synthetic workloads target the
    paper's numbers but are not the paper's binaries; what must hold is
    the ordering and rough magnitude (EXPERIMENTS.md records exact
    deltas at full scale).
    """

    @pytest.fixture(scope="class")
    def rates(self, claims_suite):
        from repro.hierarchy.system import MemorySystem

        out = {}
        for trace in claims_suite:
            result = MemorySystem().run(trace)
            out[trace.name] = (result.imiss_rate, result.dmiss_rate)
        return out

    def test_numeric_codes_have_no_instruction_misses(self, rates):
        assert rates["linpack"][0] < 0.005
        assert rates["liver"][0] < 0.01

    def test_instruction_rate_ordering(self, rates):
        assert rates["ccom"][0] > rates["grr"][0] > rates["yacc"][0] > rates["met"][0]

    def test_data_rate_ordering(self, rates):
        assert rates["liver"][1] > rates["linpack"][1] > rates["ccom"][1]
        assert rates["ccom"][1] > rates["yacc"][1]

    def test_rates_within_band(self, rates):
        targets = {
            "ccom": (0.096, 0.120),
            "grr": (0.061, 0.062),
            "yacc": (0.028, 0.040),
            "met": (0.017, 0.039),
            "linpack": (0.000, 0.144),
            "liver": (0.000, 0.273),
        }
        for name, (ti, td) in targets.items():
            mi, md = rates[name]
            if ti > 0:
                assert 0.4 * ti < mi < 2.2 * ti, (name, mi, ti)
            assert 0.5 * td < md < 1.7 * td, (name, md, td)


class TestFigure31ConflictShape:
    def test_met_has_highest_data_conflict_share(self, claims_suite):
        from repro.common.config import CacheConfig
        from repro.experiments.runner import run_level

        config = CacheConfig(4096, 16)
        shares = {}
        for trace in claims_suite:
            run = run_level(trace.data_addresses, config, classify=True)
            shares[trace.name] = run.classifier.percent_conflict
        assert max(shares, key=shares.get) == "met"
        assert shares["liver"] < 15.0
        assert shares["linpack"] < 30.0
