"""Result store: correctness, corruption tolerance, zero-recompute warm runs."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.common.config import CacheConfig
from repro.experiments.engine import (
    EntrySweepJob,
    LevelJob,
    LevelSummary,
    RunSweepJob,
    _store_key,
    run_jobs,
)
from repro.experiments.grid import GridSpec, sweep_grid
from repro.experiments.sweeps import EntrySweep, RunLengthSweep
from repro.experiments.workloads import materialized_trace
from repro.hierarchy.level import CacheLevel
from repro.specs import SystemSpec
from repro.store import (
    RESULT_SCHEMA_VERSION,
    ResultKey,
    ResultStore,
    current_store,
    set_store,
)

SCALE = 3_000


@pytest.fixture
def store(tmp_path, monkeypatch):
    """An activated store rooted in a temp dir, deactivated on teardown."""
    monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
    yield current_store()


@pytest.fixture
def no_store(monkeypatch):
    monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)


@pytest.fixture
def sim_counter(monkeypatch):
    """Count simulations: every interpreter replay builds a CacheLevel, and
    every vectorized replay calls the kernel's simulate_level."""
    counts = {"levels": 0}
    original = CacheLevel.__init__

    def counting(self, *args, **kwargs):
        counts["levels"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(CacheLevel, "__init__", counting)
    try:
        from repro.kernels import numpy_backend
    except ImportError:
        pass
    else:
        kernel_original = numpy_backend.simulate_level

        def kernel_counting(*args, **kwargs):
            counts["levels"] += 1
            return kernel_original(*args, **kwargs)

        monkeypatch.setattr(numpy_backend, "simulate_level", kernel_counting)
    return counts


def level_job(name="ccom", side="d"):
    trace = materialized_trace(name, SCALE)
    return LevelJob(SystemSpec.for_level(trace, CacheConfig(4096, 16), side=side))


class TestResultKey:
    def test_digest_is_stable(self):
        a = ResultKey("LevelJob", "abc", "def", {"x": 1})
        b = ResultKey("LevelJob", "abc", "def", {"x": 1})
        assert a.digest() == b.digest()

    @pytest.mark.parametrize(
        "other",
        [
            ResultKey("EntrySweepJob", "abc", "def", {"x": 1}),
            ResultKey("LevelJob", "abd", "def", {"x": 1}),
            ResultKey("LevelJob", "abc", "dee", {"x": 1}),
            ResultKey("LevelJob", "abc", "def", {"x": 2}),
        ],
    )
    def test_every_component_perturbs_digest(self, other):
        base = ResultKey("LevelJob", "abc", "def", {"x": 1})
        assert base.digest() != other.digest()

    def test_job_keys_cover_all_parameters(self):
        job = level_job()
        sweep = EntrySweepJob(system=job.system, kind="victim", max_entries=7)
        run = RunSweepJob(system=job.system, ways=4, entries=2, max_run=8)
        digests = {_store_key(j).digest() for j in (job, sweep, run)}
        assert len(digests) == 3
        assert _store_key(sweep).extras == {"kind": "victim", "max_entries": 7}
        assert _store_key(run).extras == {"ways": 4, "entries": 2, "max_run": 8}


class TestRoundTrip:
    @pytest.mark.parametrize(
        "result",
        [
            LevelSummary(100, 10, 2, 8, stream_stall_cycles=5, conflict_misses=4),
            LevelSummary(100, 10, 0, 10),
            EntrySweep(total_misses=50, conflict_misses=20, hits_by_entries=[0, 3, 5]),
            RunLengthSweep(total_misses=40, removed_by_run=[0, 1, 2, 2]),
        ],
    )
    def test_exact_round_trip(self, tmp_path, result):
        store = ResultStore(tmp_path)
        key = ResultKey("LevelJob", "s", "t", {})
        store.put(key, result)
        loaded, nbytes = store.get(key)
        assert loaded == result
        assert type(loaded) is type(result)
        assert nbytes > 0

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(ResultKey("LevelJob", "s", "t", {})) == (None, 0)


class TestCorruptionTolerance:
    def entry_path(self, store, key):
        return store._entry_path(key)

    @pytest.mark.parametrize(
        "garbage",
        [
            b"",  # truncated to nothing
            b"{not json",  # syntactically broken
            b'"a bare string"',  # wrong top-level shape
            b'{"result_schema": 1, "key": {}, "result": {"type": "Nope", "fields": {}}}',
            b'{"result_schema": 1}',  # missing sections
        ],
    )
    def test_damaged_entry_reads_as_miss(self, tmp_path, garbage):
        store = ResultStore(tmp_path)
        key = ResultKey("LevelJob", "s", "t", {})
        store.put(key, LevelSummary(1, 1, 0, 1))
        self.entry_path(store, key).write_bytes(garbage)
        assert store.get(key) == (None, 0)

    def test_corrupt_entry_degrades_to_recompute(self, store, sim_counter):
        job = level_job()
        first = run_jobs([job])
        key = _store_key(job)
        self.entry_path(store, key).write_bytes(b"{broken")
        before = sim_counter["levels"]
        again = run_jobs([job])  # recomputes and rewrites the entry
        assert again == first
        assert sim_counter["levels"] > before
        assert store.get(key)[0] == first[0]  # healed by the rewrite

    def test_schema_version_bump_invalidates(self, store, monkeypatch):
        job = level_job()
        first = run_jobs([job])
        import repro.store.core as core

        monkeypatch.setattr(core, "RESULT_SCHEMA_VERSION", RESULT_SCHEMA_VERSION + 1)
        assert store.get(_store_key(job)) == (None, 0)
        run_jobs([job])  # repopulates under the new version directory
        stats = store.stats()
        assert stats.entries == 1 and stats.stale_entries == 1
        # Back on the original version, the old entry still serves...
        monkeypatch.setattr(core, "RESULT_SCHEMA_VERSION", RESULT_SCHEMA_VERSION)
        assert store.get(_store_key(job))[0] == first[0]
        # ...and gc drops the now-superseded bumped entry.
        assert store.gc() == 1
        assert store.stats().stale_entries == 0

    def test_tampered_key_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = ResultKey("LevelJob", "s", "t", {})
        store.put(key, LevelSummary(1, 1, 0, 1))
        path = self.entry_path(store, key)
        payload = json.loads(path.read_bytes())
        payload["key"]["spec_hash"] = "tampered"
        path.write_bytes(json.dumps(payload).encode())
        assert store.get(key) == (None, 0)


class TestWarmRunsAreZeroSim:
    def test_warm_batch_runs_no_simulations(self, store, sim_counter):
        jobs = [level_job("ccom"), level_job("ccom", side="i"), level_job("liver")]
        cold = run_jobs(jobs)
        before = sim_counter["levels"]
        warm = run_jobs(jobs)
        assert warm == cold
        assert sim_counter["levels"] == before

    def test_warm_equals_cold_serial_across_modes(self, tmp_path, monkeypatch, small_suite):
        spec = GridSpec(cache_sizes_kb=[2, 4], line_sizes=[16])
        traces = small_suite[:2]
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        cold_serial = sweep_grid(traces, spec, side="d", jobs=1)
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "grid-store"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # store-routed serial must not warn
            populated = sweep_grid(traces, spec, side="d", jobs=1)
        warm_parallel = sweep_grid(traces, spec, side="d", jobs=4)
        assert populated.rows == cold_serial.rows
        assert warm_parallel.rows == cold_serial.rows

    def test_warm_grid_is_zero_sim(self, store, sim_counter, small_suite):
        spec = GridSpec(cache_sizes_kb=[2], line_sizes=[16])
        traces = small_suite[:2]
        cold = sweep_grid(traces, spec, side="i", jobs=1)
        before = sim_counter["levels"]
        warm = sweep_grid(traces, spec, side="i", jobs=1)
        assert warm.rows == cold.rows
        assert sim_counter["levels"] == before

    def test_store_off_by_default(self, no_store, sim_counter):
        job = level_job()
        run_jobs([job])
        before = sim_counter["levels"]
        run_jobs([job])
        assert sim_counter["levels"] > before  # no memoization without a store


class TestCliIntegration:
    def test_warm_cli_run_is_zero_sim_and_identical(
        self, tmp_path, monkeypatch, capsys, sim_counter
    ):
        from repro.experiments.cli import main

        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "cli-store"))
        argv = ["figure_3_3", "--scale", "2000"]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        before = sim_counter["levels"]
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert sim_counter["levels"] == before

        def rows(text):
            return [line for line in text.splitlines() if not line.startswith("[")]

        assert rows(warm_out) == rows(cold_out)

    def test_store_subcommand(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.cli import main

        root = tmp_path / "cmd-store"
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert main(["store", "stats"]) == 2  # no store configured
        capsys.readouterr()
        assert main(["store", "stats", "--result-store", str(root)]) == 0
        assert "current entries: 0" in capsys.readouterr().out
        ResultStore(root).put(ResultKey("LevelJob", "s", "t", {}), LevelSummary(1, 1, 0, 1))
        assert main(["store", "stats", "--result-store", str(root)]) == 0
        assert "current entries: 1" in capsys.readouterr().out
        assert main(["store", "clear", "--result-store", str(root)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_result_store_flag_sets_environment(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.cli import main
        import os

        monkeypatch.setenv("REPRO_RESULT_STORE", "")  # restore on teardown
        root = tmp_path / "flag-store"
        assert main(["figure_3_3", "--scale", "2000", "--result-store", str(root)]) == 0
        capsys.readouterr()
        assert os.environ["REPRO_RESULT_STORE"] == str(root)
        assert ResultStore(root).stats().entries > 0


class TestTelemetry:
    def test_record_carries_store_traffic(self, store):
        from repro.telemetry import core as telemetry
        from repro.telemetry.record import build_run_record, validate_record

        job = level_job()
        run_jobs([job])  # populate outside any scope
        scope = telemetry.activate()
        try:
            run_jobs([job])  # warm: one hit
            run_jobs([level_job("liver")])  # cold: one miss
        finally:
            telemetry.deactivate()
        assert scope.store_hits == 1
        assert scope.store_misses == 1
        assert scope.store_bytes_read > 0
        record = build_run_record(scope, run="t", config=None, wall_time_s=0.1)
        payload = record.as_dict()
        validate_record(payload)
        assert payload["store"] == {
            "hits": 1,
            "misses": 1,
            "bytes_read": scope.store_bytes_read,
        }

    def test_records_without_store_field_still_validate(self, no_store):
        from repro.telemetry import core as telemetry
        from repro.telemetry.record import build_run_record, validate_record

        scope = telemetry.MetricsScope()
        record = build_run_record(scope, run="t", config=None, wall_time_s=0.1)
        payload = record.as_dict()
        assert payload["store"] == {}
        payload.pop("store")  # a record from an older emitter
        validate_record(payload)

    def test_progress_reports_store_hits(self, store):
        from repro.telemetry.core import JobProgress

        job = level_job()
        run_jobs([job])
        beats = []
        run_jobs([job], progress=beats.append)
        assert beats and isinstance(beats[-1], JobProgress)
        assert beats[-1].store_hits == 1
        assert "from store" in str(beats[-1])
