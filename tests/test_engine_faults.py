"""Tests for the engine's resilience layer, driven by fault injection.

The contract under test: transient failures retry and succeed, permanent
failures surface as :class:`JobFailedError` *after* the rest of the
batch completed and was flushed, a dead worker never takes the batch
down (the pool is rebuilt and only unfinished jobs re-run), a hung job
is cut short by ``--job-timeout``, and an interrupted run resumes from
the result store with zero re-simulations of flushed work.

Every failure here is injected through :mod:`repro.experiments.faults`,
so the schedule is deterministic: ``crash@2x*`` means job 2 fails on
every attempt, on any machine, every time.
"""

import os

import pytest

from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.experiments import faults
from repro.experiments.engine import (
    JobFailedError,
    LevelJob,
    ResilienceOptions,
    run_jobs,
    validate_job_timeout,
    validate_retries,
)
from repro.experiments.grid import GridSpec, sweep_grid
from repro.experiments.workloads import materialized_trace, suite
from repro.hierarchy.level import CacheLevel
from repro.specs import SystemSpec, parse_structure_code
from repro.store import current_store
from repro.store.core import ResultStore, StoreWriteWarning
from repro.telemetry import core as telemetry
from repro.telemetry.core import JobProgress, ParallelFallbackWarning
from repro.telemetry.record import build_run_record, validate_record

SCALE = 1_500
CONFIG = CacheConfig(4096, 16)

#: Fast retries: tests never need real backoff sleeps.
FAST = ResilienceOptions(retries=2, backoff_base=0.0)
NO_RETRY = ResilienceOptions(retries=0, backoff_base=0.0)


@pytest.fixture(autouse=True)
def clean_fault_plan(monkeypatch):
    """No fault plan leaks between tests (in-process or via environment)."""
    monkeypatch.delenv(faults.ENV_FAULT_PLAN, raising=False)
    faults.set_plan(None)
    yield
    faults.set_plan(None)


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
    yield current_store()


@pytest.fixture
def no_store(monkeypatch):
    monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)


@pytest.fixture
def sim_counter(monkeypatch):
    """Count simulations: every interpreter replay builds a CacheLevel, and
    every vectorized replay calls the kernel's simulate_level."""
    counts = {"levels": 0}
    original = CacheLevel.__init__

    def counting(self, *args, **kwargs):
        counts["levels"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(CacheLevel, "__init__", counting)
    try:
        from repro.kernels import numpy_backend
    except ImportError:
        pass
    else:
        kernel_original = numpy_backend.simulate_level

        def kernel_counting(*args, **kwargs):
            counts["levels"] += 1
            return kernel_original(*args, **kwargs)

        monkeypatch.setattr(numpy_backend, "simulate_level", kernel_counting)
    return counts


def level_jobs(count=4, side="d"):
    names = ("ccom", "grr", "yacc", "met", "linpack", "liver")[:count]
    return [
        LevelJob(SystemSpec.for_level(materialized_trace(name, SCALE), CONFIG, side=side))
        for name in names
    ]


class TestFaultPlanParsing:
    def test_actions_and_fields(self):
        plan = faults.parse_plan("crash@3x2, kill@5x*, hang@2:7.5, corrupt@0")
        assert [c.action for c in plan.clauses] == ["crash", "kill", "hang", "corrupt"]
        assert plan.clauses[0] == faults.FaultClause("crash", 3, count=2)
        assert plan.clauses[1].count == faults.ALWAYS
        assert plan.clauses[2].seconds == 7.5

    def test_attempt_windows(self):
        clause = faults.parse_plan("crash@3x2").clauses[0]
        assert clause.applies(3, 0) and clause.applies(3, 1)
        assert not clause.applies(3, 2)
        assert not clause.applies(4, 0)
        always = faults.parse_plan("kill@1x*").clauses[0]
        assert always.applies(1, 99)

    @pytest.mark.parametrize(
        "text",
        ["explode@1", "crash", "crash@", "crash@-1", "crash@1x0", "crash@1xq", "hang@1:soon"],
    )
    def test_malformed_plans_rejected(self, text):
        with pytest.raises(ConfigurationError):
            faults.parse_plan(text)

    def test_env_plan_reaches_maybe_inject(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, "crash@7")
        with pytest.raises(faults.InjectedFault):
            faults.maybe_inject(7, 0)
        assert faults.maybe_inject(7, 1) is None
        assert faults.maybe_inject(6, 0) is None

    def test_no_plan_is_a_noop(self):
        assert faults.maybe_inject(0, 0) is None


class TestValidators:
    def test_job_timeout_rejects_non_positive(self):
        for bad in (0, -1, -0.5):
            with pytest.raises(ConfigurationError):
                validate_job_timeout(bad)
        assert validate_job_timeout(1.5) == 1.5

    def test_retries_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validate_retries(-1)
        assert validate_retries(0) == 0

    def test_env_values_resolved_and_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_RETRIES", "4")
        assert validate_job_timeout(None) == 2.5
        assert validate_retries(None) == 4
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "soon")
        with pytest.raises(ConfigurationError):
            validate_job_timeout(None)
        monkeypatch.setenv("REPRO_RETRIES", "-2")
        with pytest.raises(ConfigurationError):
            validate_retries(None)


class TestSerialResilience:
    def test_retry_then_succeed(self, no_store):
        jobs = level_jobs(2)
        clean = run_jobs(jobs)
        faults.set_plan("crash@0x2")
        assert run_jobs(jobs, resilience=FAST) == clean

    def test_retry_exhaustion_raises_after_finishing_batch(self, no_store, store):
        jobs = level_jobs(4)
        faults.set_plan("crash@1x*")
        with pytest.raises(JobFailedError) as excinfo:
            run_jobs(jobs, resilience=FAST)
        assert [f.index for f in excinfo.value.failures] == [1]
        assert "injected crash" in str(excinfo.value)
        # The three healthy jobs were still executed and checkpointed.
        assert store.stats().entries == 3

    def test_corrupt_payload_is_retried(self, no_store):
        jobs = level_jobs(1)
        clean = run_jobs(jobs)
        faults.set_plan("corrupt@0x1")
        assert run_jobs(jobs, resilience=FAST) == clean
        faults.set_plan("corrupt@0x*")
        with pytest.raises(JobFailedError) as excinfo:
            run_jobs(jobs, resilience=NO_RETRY)
        assert "corrupt result payload" in excinfo.value.failures[0].reason

    def test_serial_timeout_cuts_hung_job(self, no_store):
        jobs = level_jobs(2)
        faults.set_plan("hang@0:30")
        opts = ResilienceOptions(job_timeout=0.3, retries=0, backoff_base=0.0)
        with pytest.raises(JobFailedError) as excinfo:
            run_jobs(jobs, resilience=opts)
        assert "timed out after 0.3s" in excinfo.value.failures[0].reason

    def test_interrupt_preserves_flushed_results(self, store):
        jobs = level_jobs(4)
        faults.set_plan("interrupt@2")
        with pytest.raises(KeyboardInterrupt):
            run_jobs(jobs, resilience=NO_RETRY)
        # Jobs 0 and 1 completed before the injected Ctrl-C and survive.
        assert store.stats().entries == 2

    def test_retries_recorded_on_scope(self, no_store):
        faults.set_plan("crash@0x1")
        with telemetry.scoped() as scope:
            run_jobs(level_jobs(1), resilience=FAST)
        assert scope.job_retries == 1
        record = build_run_record(scope, run="x", config=None, wall_time_s=0.1)
        payload = record.as_dict()
        validate_record(payload)
        assert payload["resilience"]["retries"] == 1


class TestPoolResilience:
    def test_dead_worker_recovers(self, no_store, monkeypatch):
        jobs = level_jobs(4)
        clean = run_jobs(jobs)
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, "kill@1x1")
        with telemetry.scoped() as scope:
            assert run_jobs(jobs, jobs=2, resilience=FAST) == clean
        assert scope.pool_rebuilds >= 1

    def test_poison_job_is_isolated(self, store, monkeypatch):
        jobs = level_jobs(4)
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, "kill@1x*")
        with telemetry.scoped() as scope:
            with pytest.raises(JobFailedError) as excinfo:
                run_jobs(jobs, jobs=2, resilience=FAST)
        assert [f.index for f in excinfo.value.failures] == [1]
        assert "poison" in excinfo.value.failures[0].reason
        assert scope.poisoned_jobs == 1
        # The other three jobs completed despite the repeated pool kills.
        assert store.stats().entries == 3

    def test_pool_timeout_reclaims_hung_worker(self, no_store, monkeypatch):
        jobs = level_jobs(2)
        clean = run_jobs(jobs)
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, "hang@0x1:30")
        opts = ResilienceOptions(job_timeout=0.5, retries=2, backoff_base=0.0)
        with telemetry.scoped() as scope:
            assert run_jobs(jobs, jobs=2, resilience=opts) == clean
        assert scope.job_timeouts >= 1

    def test_repeated_breakage_falls_back_to_serial(self, no_store, monkeypatch):
        jobs = level_jobs(2)
        clean = run_jobs(jobs)
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, "kill@0x1,kill@1x1")
        opts = ResilienceOptions(retries=5, backoff_base=0.0, max_pool_rebuilds=0)
        # One break exhausts the rebuild budget; the remainder must finish
        # serially (in-process, where `kill` raises instead of exiting)
        # with the fallback surfaced, not swallowed.
        with pytest.warns(ParallelFallbackWarning, match="pool broke"):
            assert run_jobs(jobs, jobs=2, resilience=opts) == clean


class TestOffMainThreadTimeout:
    """Regression: ``--job-timeout`` off the main thread (the serve
    daemon runs inline jobs under executor threads) must degrade to the
    watchdog path — ``signal.signal`` raises ``ValueError`` there, and
    before the watchdog existed such jobs simply ran unbounded."""

    @staticmethod
    def run_in_thread(fn):
        import threading

        box = {}

        def target():
            try:
                box["value"] = fn()
            except BaseException as exc:
                box["error"] = exc

        worker = threading.Thread(target=target)
        worker.start()
        worker.join(30)
        assert not worker.is_alive(), "threaded run_jobs call never returned"
        if "error" in box:
            raise box["error"]
        return box["value"]

    @pytest.fixture(autouse=True)
    def fresh_watchdog_warning(self, monkeypatch):
        from repro.experiments import engine

        monkeypatch.setattr(engine, "_WATCHDOG_WARNED", False)

    def test_hung_job_times_out_with_a_recorded_warning(self, no_store):
        import warnings

        jobs = level_jobs(2)
        faults.set_plan("hang@0:5")
        opts = ResilienceOptions(job_timeout=0.3, retries=0, backoff_base=0.0)

        def call():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with telemetry.scoped() as scope:
                    with pytest.raises(JobFailedError) as excinfo:
                        run_jobs(jobs, resilience=opts)
            return excinfo.value, caught, scope

        error, caught, scope = self.run_in_thread(call)
        # The hung job timed out instead of running unbounded (or
        # crashing the batch with signal's ValueError)...
        assert [f.index for f in error.failures] == [0]
        assert "timed out after 0.3s" in error.failures[0].reason
        # ...and the degraded enforcement is surfaced, not silent.
        assert any(
            issubclass(w.category, RuntimeWarning) and "watchdog" in str(w.message)
            for w in caught
        )
        assert any(event.component == "serial_deadline" for event in scope.fallbacks)

    def test_clean_jobs_pass_results_through_the_watchdog(self, no_store):
        jobs = level_jobs(2)
        clean = run_jobs(jobs)  # main thread, no deadline
        opts = ResilienceOptions(job_timeout=30.0, retries=0, backoff_base=0.0)
        with pytest.warns(RuntimeWarning, match="watchdog"):
            assert self.run_in_thread(lambda: run_jobs(jobs, resilience=opts)) == clean


class TestCheckpointResume:
    def test_crash_then_resume_matches_clean_serial_run(
        self, tmp_path, monkeypatch, sim_counter
    ):
        """The acceptance scenario: crash at job N, rerun, identical rows."""
        traces = suite(SCALE, 0)[:2]
        spec = GridSpec(
            cache_sizes_kb=(4,),
            line_sizes=(16,),
            structures={"base": None, "vc4": parse_structure_code("vc4")},
        )
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        reference = sweep_grid(traces, spec, jobs=1)

        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        faults.set_plan("crash@2x*")
        with pytest.raises(JobFailedError):
            sweep_grid(traces, spec, jobs=1, resilience=NO_RETRY)
        assert current_store().stats().entries == 3  # jobs 0, 1, 3 flushed

        faults.set_plan(None)
        before = sim_counter["levels"]
        with telemetry.scoped() as scope:
            resumed = sweep_grid(traces, spec, jobs=1, resilience=NO_RETRY)
        assert resumed.rows == reference.rows
        assert scope.store_hits == 3 and scope.store_misses == 1
        # Exactly the one unfinished point simulated, nothing re-ran.
        assert sim_counter["levels"] - before == 1

    def test_fully_warm_resume_is_zero_sim(self, store, sim_counter):
        jobs = level_jobs(3)
        run_jobs(jobs)
        before = sim_counter["levels"]
        assert run_jobs(jobs) == run_jobs(jobs)
        assert sim_counter["levels"] == before


class TestStoreFailureTolerance:
    def test_unwritable_store_warns_once_and_continues(self, tmp_path, monkeypatch):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        monkeypatch.setenv("REPRO_RESULT_STORE", str(blocker / "store"))
        jobs = level_jobs(2)
        with pytest.warns(StoreWriteWarning, match="not writable"):
            first = run_jobs(jobs)
        # Second batch: degraded silently, results still correct.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", StoreWriteWarning)
            assert run_jobs(jobs) == first

    def test_gc_removes_orphaned_tmp_files(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fan = store._version_dir() / "ab"
        fan.mkdir(parents=True)
        (fan / ".tmp-dead1.json").write_text("{")
        (fan / ".tmp-dead2.json").write_text("")
        stats = store.stats()
        assert stats.orphaned_tmp == 2
        assert "orphaned tmp:    2" in stats.render()
        assert store.gc() == 2
        assert store.stats().orphaned_tmp == 0
        assert not fan.exists()  # pruned once empty


class TestCLIValidation:
    def run_main(self, argv):
        from repro.experiments.cli import main

        return main(argv)

    @pytest.mark.parametrize("argv", [["--job-timeout", "0"], ["--job-timeout", "-3"]])
    def test_non_positive_timeout_exits_2(self, argv, capsys):
        assert self.run_main(argv) == 2
        assert "--job-timeout must be positive" in capsys.readouterr().err

    def test_negative_retries_exits_2(self, capsys):
        assert self.run_main(["--retries", "-1"]) == 2
        assert "--retries must be at least 0" in capsys.readouterr().err

    def test_malformed_env_retries_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RETRIES", "many")
        assert self.run_main(["--list"]) == 2
        assert "REPRO_RETRIES" in capsys.readouterr().err

    def test_resume_without_store_exits_2(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert self.run_main(["--resume", "--list"]) == 2
        assert "--resume requires a result store" in capsys.readouterr().err

    def test_resume_with_store_accepted(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        assert self.run_main(["--resume", "--list"]) == 0

    def test_flags_exported_to_environment(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert self.run_main(["--job-timeout", "9.5", "--retries", "3", "--list"]) == 0
        assert os.environ["REPRO_JOB_TIMEOUT"] == "9.5"
        assert os.environ["REPRO_RETRIES"] == "3"
        monkeypatch.delenv("REPRO_JOB_TIMEOUT")
        monkeypatch.delenv("REPRO_RETRIES")


class TestHeartbeatFields:
    def test_progress_reports_resilience_activity(self, no_store):
        faults.set_plan("crash@0x1")
        beats = []
        run_jobs(level_jobs(1), progress=beats.append, resilience=FAST)
        assert beats and beats[-1].done == 1
        assert beats[-1].retries == 1

    def test_jobprogress_renders_additive_fields(self):
        text = str(JobProgress(3, 8, 1.0, store_hits=2, retries=1, recoveries=1, note="n"))
        assert "jobs done" in text
        assert "[1 retried]" in text and "[1 pool rebuilds]" in text and "[n]" in text


@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"), reason="chaos tests run with REPRO_CHAOS=1"
)
class TestChaos:
    """CI chaos mode: a noisy fault schedule over a real parallel grid."""

    def test_grid_survives_mixed_faults(self, tmp_path, monkeypatch):
        traces = suite(SCALE, 0)[:3]
        spec = GridSpec(
            cache_sizes_kb=(2, 4),
            line_sizes=(16,),
            structures={"base": None, "vc4": parse_structure_code("vc4")},
        )
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        reference = sweep_grid(traces, spec, jobs=1)
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, "crash@0x2,kill@3x1,corrupt@5x1")
        opts = ResilienceOptions(retries=3, backoff_base=0.0)
        chaotic = sweep_grid(traces, spec, jobs=2, resilience=opts)
        assert chaotic.rows == reference.rows
