"""Unit and property tests for the direct-mapped cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.caches.direct_mapped import DirectMappedCache
from repro.common.config import CacheConfig

lines = st.integers(min_value=0, max_value=1 << 20)


@pytest.fixture
def cache():
    # 4 lines for tight control over conflicts.
    return DirectMappedCache(CacheConfig(64, 16))


class TestBasicOperation:
    def test_starts_empty(self, cache):
        assert cache.occupancy() == 0
        assert not cache.probe(0)

    def test_fill_then_hit(self, cache):
        assert cache.fill(5) is None
        assert cache.probe(5)
        assert cache.access(5)

    def test_conflicting_fill_evicts(self, cache):
        cache.fill(1)
        victim = cache.fill(5)  # 5 % 4 == 1 % 4
        assert victim == 1
        assert not cache.probe(1)
        assert cache.probe(5)

    def test_non_conflicting_fills_coexist(self, cache):
        for line in range(4):
            assert cache.fill(line) is None
        assert all(cache.probe(line) for line in range(4))
        assert cache.occupancy() == 4

    def test_refill_resident_line_returns_no_victim(self, cache):
        cache.fill(7)
        assert cache.fill(7) is None
        assert cache.probe(7)

    def test_invalidate(self, cache):
        cache.fill(3)
        assert cache.invalidate(3)
        assert not cache.probe(3)
        assert not cache.invalidate(3)

    def test_invalidate_wrong_line_same_set(self, cache):
        cache.fill(1)
        assert not cache.invalidate(5)
        assert cache.probe(1)

    def test_clear(self, cache):
        cache.fill(1)
        cache.fill(2)
        cache.clear()
        assert cache.occupancy() == 0

    def test_resident_lines(self, cache):
        cache.fill(0)
        cache.fill(5)
        assert sorted(cache.resident_lines()) == [0, 5]

    def test_access_and_fill_convenience(self, cache):
        assert not cache.access_and_fill(9)
        assert cache.access_and_fill(9)


class TestGeometryHelpers:
    def test_index_of(self, cache):
        assert cache.index_of(0) == 0
        assert cache.index_of(4) == 0
        assert cache.index_of(7) == 3

    def test_resident_at(self, cache):
        assert cache.resident_at(2) is None
        cache.fill(6)
        assert cache.resident_at(2) == 6

    def test_conflicts_with(self, cache):
        assert cache.conflicts_with(1, 5)
        assert not cache.conflicts_with(1, 2)
        assert not cache.conflicts_with(1, 1)


class TestProperties:
    @given(st.lists(lines, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, refs):
        cache = DirectMappedCache(CacheConfig(128, 16))
        for line in refs:
            cache.access_and_fill(line)
        assert cache.occupancy() <= cache.num_lines

    @given(st.lists(lines, max_size=200))
    def test_most_recent_fill_always_resident(self, refs):
        cache = DirectMappedCache(CacheConfig(128, 16))
        for line in refs:
            cache.fill(line)
            assert cache.probe(line)

    @given(st.lists(lines, max_size=200))
    def test_resident_lines_map_to_distinct_sets(self, refs):
        cache = DirectMappedCache(CacheConfig(128, 16))
        for line in refs:
            cache.access_and_fill(line)
        indices = [cache.index_of(line) for line in cache.resident_lines()]
        assert len(indices) == len(set(indices))

    @given(st.lists(lines, max_size=200))
    def test_probe_is_pure(self, refs):
        cache = DirectMappedCache(CacheConfig(128, 16))
        for line in refs:
            cache.access_and_fill(line)
        before = sorted(cache.resident_lines())
        for line in refs[:20]:
            cache.probe(line)
        assert sorted(cache.resident_lines()) == before
