"""Unit tests for the miss cache (paper §3.1)."""

from repro.buffers.miss_cache import MissCache
from repro.caches.fully_associative import ReplacementPolicy
from repro.common.types import AccessOutcome
from repro.hierarchy.level import CacheLevel


def drive(level, lines):
    return [level.access_line(line) for line in lines]


class TestMissCacheAlone:
    def test_miss_then_hit_after_fill(self):
        mc = MissCache(2)
        assert not mc.lookup_on_miss(7, 0).satisfied
        mc.on_l1_fill(7, None, 0)
        result = mc.lookup_on_miss(7, 1)
        assert result.satisfied
        assert result.outcome is AccessOutcome.MISS_CACHE_HIT

    def test_loads_requested_line_not_victim(self):
        mc = MissCache(2)
        mc.lookup_on_miss(7, 0)
        mc.on_l1_fill(7, victim=3, now=0)
        assert mc.contains(7)
        assert not mc.contains(3)

    def test_lru_eviction(self):
        mc = MissCache(2)
        for line in (1, 2, 3):
            mc.lookup_on_miss(line, 0)
            mc.on_l1_fill(line, None, 0)
        assert not mc.contains(1)
        assert mc.contains(2) and mc.contains(3)

    def test_hit_refreshes_lru(self):
        mc = MissCache(2)
        for line in (1, 2):
            mc.lookup_on_miss(line, 0)
            mc.on_l1_fill(line, None, 0)
        mc.lookup_on_miss(1, 0)  # hit: 1 becomes MRU
        mc.on_l1_fill(1, None, 0)
        mc.lookup_on_miss(3, 0)
        mc.on_l1_fill(3, None, 0)
        assert mc.contains(1) and not mc.contains(2)

    def test_counters(self):
        mc = MissCache(2)
        mc.lookup_on_miss(1, 0)
        mc.on_l1_fill(1, None, 0)
        mc.lookup_on_miss(1, 0)
        assert mc.lookups == 2
        assert mc.hits == 1

    def test_reset(self):
        mc = MissCache(2, track_depths=True)
        mc.lookup_on_miss(1, 0)
        mc.on_l1_fill(1, None, 0)
        mc.lookup_on_miss(1, 0)
        mc.reset()
        assert mc.hits == 0 and mc.lookups == 0
        assert mc.occupancy() == 0
        assert mc.hit_depths.total() == 0

    def test_depth_tracking(self):
        mc = MissCache(4, track_depths=True)
        for line in (1, 2):
            mc.lookup_on_miss(line, 0)
            mc.on_l1_fill(line, None, 0)
        mc.lookup_on_miss(1, 0)  # depth 1 (2 is MRU)
        assert mc.hit_depths.counts == {1: 1}

    def test_fifo_policy(self):
        mc = MissCache(2, policy=ReplacementPolicy.FIFO)
        for line in (1, 2):
            mc.lookup_on_miss(line, 0)
            mc.on_l1_fill(line, None, 0)
        mc.lookup_on_miss(1, 0)  # FIFO: no refresh
        mc.on_l1_fill(1, None, 0)
        mc.lookup_on_miss(3, 0)
        mc.on_l1_fill(3, None, 0)
        assert not mc.contains(1)


class TestMissCacheBehindLevel:
    def test_string_compare_pattern_needs_two_entries(self, l1_config):
        """The paper's §3.1 example: alternating conflicting lines.

        A 2-entry miss cache removes all misses after warmup; a 1-entry
        one removes none (each miss evicts the other line).
        """
        a, b = 0, 256  # same set in a 256-line cache
        pattern = [a, b] * 40

        two = CacheLevel(l1_config, MissCache(2))
        drive(two, pattern)
        # first two misses are cold; the rest hit the miss cache
        assert two.stats.outcomes[AccessOutcome.MISS_CACHE_HIT] == len(pattern) - 2

        one = CacheLevel(l1_config, MissCache(1))
        drive(one, pattern)
        assert one.stats.outcomes[AccessOutcome.MISS_CACHE_HIT] == 0

    def test_duplication_wastes_space(self, l1_config):
        """Every miss-cache entry duplicates an L1 line right after a fill."""
        level = CacheLevel(l1_config, MissCache(4))
        for line in (10, 20, 30):
            level.access_line(line)
        mc = level.augmentation
        for line in (10, 20, 30):
            assert mc.contains(line)
            assert level.cache.probe(line)

    def test_l1_state_independent_of_miss_cache(self, l1_config):
        """The key single-pass-sweep property: L1 evolves identically."""
        import random

        rng = random.Random(3)
        pattern = [rng.randrange(1024) for _ in range(2000)]
        plain = CacheLevel(l1_config)
        with_mc = CacheLevel(l1_config, MissCache(4))
        for line in pattern:
            plain.access_line(line)
            with_mc.access_line(line)
        assert sorted(plain.cache.resident_lines()) == sorted(
            with_mc.cache.resident_lines()
        )
        assert plain.stats.demand_misses == with_mc.stats.demand_misses
