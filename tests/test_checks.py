"""Tests for the runtime shape-check harness (--check)."""

import pytest

from repro.experiments.checks import (
    CheckOutcome,
    ShapeCheck,
    render_outcomes,
    run_checks,
)


@pytest.fixture(scope="module")
def outcomes(claims_suite):
    return run_checks(traces=claims_suite)


class TestRunChecks:
    def test_all_claims_pass_on_calibrated_suite(self, outcomes):
        failing = [o.check.check_id for o in outcomes if not o.passed]
        assert not failing, failing

    def test_every_check_has_detail(self, outcomes):
        for outcome in outcomes:
            assert outcome.detail

    def test_check_ids_unique(self, outcomes):
        ids = [o.check.check_id for o in outcomes]
        assert len(ids) == len(set(ids))

    def test_covers_the_headline_claims(self, outcomes):
        ids = {o.check.check_id for o in outcomes}
        assert {
            "victim_ge_miss",
            "vc1_useful",
            "sb_i_beats_d",
            "multiway_doubles_d",
            "combined_halves_misses",
        } <= ids


class TestRender:
    def test_render_shows_status_and_tally(self, outcomes):
        text = render_outcomes(outcomes)
        assert "[PASS]" in text
        assert f"{len(outcomes)}/{len(outcomes)} checks passed" in text

    def test_render_marks_failures(self):
        check = ShapeCheck("x", "claim", lambda d: False, lambda d: "why")
        text = render_outcomes([CheckOutcome(check, False, "why")])
        assert "[FAIL] x" in text
        assert "0/1 checks passed" in text


class TestRobustness:
    def test_broken_predicate_reports_not_crashes(self, claims_suite, monkeypatch):
        import repro.experiments.checks as checks_module

        def boom(data):
            raise RuntimeError("broken claim")

        broken = ShapeCheck("boom", "claim", boom, lambda d: "")
        monkeypatch.setattr(checks_module, "_CHECKS", [broken])
        outcomes = run_checks(traces=claims_suite)
        assert len(outcomes) == 1
        assert not outcomes[0].passed
        assert "RuntimeError" in outcomes[0].detail

    def test_cli_check_flag(self, capsys):
        from repro.experiments.cli import main

        code = main(["--check", "--scale", "15000"])
        out = capsys.readouterr().out
        assert "shape checks" in out
        assert code in (0, 1)
