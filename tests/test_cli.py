"""Tests for the repro-experiments command-line interface."""

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.scale is None
        assert args.seed == 0

    def test_scale_and_seed(self):
        args = build_parser().parse_args(["--scale", "1000", "--seed", "7", "table_1_1"])
        assert args.scale == 1000
        assert args.seed == 7
        assert args.experiments == ["table_1_1"]


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(out) == set(ALL_EXPERIMENTS)

    def test_unknown_experiment(self, capsys):
        assert main(["no_such_thing"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runs_selected_experiment(self, capsys):
        assert main(["table_1_1", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "table_1_1" in out
        assert "VAX 11/780" in out

    def test_runs_simulated_experiment_at_small_scale(self, capsys):
        assert main(["table_2_2", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "linpack" in out

    def test_seed_changes_trace(self, capsys):
        assert main(["table_2_1", "--scale", "300", "--seed", "1"]) == 0
        assert "total" in capsys.readouterr().out
