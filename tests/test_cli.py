"""Tests for the repro-experiments command-line interface."""

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.scale is None
        assert args.seed == 0

    def test_scale_and_seed(self):
        args = build_parser().parse_args(["--scale", "1000", "--seed", "7", "table_1_1"])
        assert args.scale == 1000
        assert args.seed == 7
        assert args.experiments == ["table_1_1"]


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(out) == set(ALL_EXPERIMENTS)

    def test_unknown_experiment(self, capsys):
        assert main(["no_such_thing"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runs_selected_experiment(self, capsys):
        assert main(["table_1_1", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "table_1_1" in out
        assert "VAX 11/780" in out

    def test_runs_simulated_experiment_at_small_scale(self, capsys):
        assert main(["table_2_2", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "linpack" in out

    def test_seed_changes_trace(self, capsys):
        assert main(["table_2_1", "--scale", "300", "--seed", "1"]) == 0
        assert "total" in capsys.readouterr().out


class TestScaleValidation:
    """``--scale``/``REPRO_SCALE`` problems exit 2 like ``--jobs``."""

    def test_nonpositive_scale_exits_2(self, capsys):
        assert main(["table_1_1", "--scale", "0"]) == 2
        assert "scale must be positive" in capsys.readouterr().err

    def test_malformed_env_scale_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        assert main(["table_1_1"]) == 2
        assert "REPRO_SCALE" in capsys.readouterr().err


class TestWorkloadFlag:
    def test_workload_defaults_to_modern_workloads_experiment(self, capsys):
        spec = '{"kind": "zipfian", "length": 400, "keys": 64}'
        assert main(["--workload", spec]) == 0
        out = capsys.readouterr().out
        assert "ext_modern_workloads" in out
        assert "zipfian" in out

    def test_workload_preset_accepted(self, capsys):
        assert main(["ext_modern_workloads", "--workload", "sequential",
                     "--scale", "400"]) == 0
        assert "sequential" in capsys.readouterr().out

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["--workload", "definitely_not_a_workload"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_invalid_spec_json_exits_2(self, capsys):
        assert main(["--workload", '{"kind": "quantum"}']) == 2
        assert "unknown workload kind" in capsys.readouterr().err

    def test_workload_with_unsupporting_experiment_exits_2(self, capsys):
        assert main(["table_1_1", "--workload", "zipfian"]) == 2
        assert "--workload is not supported by" in capsys.readouterr().err
