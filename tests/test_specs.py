"""Property tests for the declarative spec layer (repro.specs).

The spec layer's contract: ``describe(build(spec)) == spec`` for every
registered structure spec, serialization is lossless and canonical
(``from_json(to_json(spec)) == spec``, equal specs give equal strings),
and the telemetry config hash is a pure function of the spec — stable
across processes and perturbed by every field.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import subprocess
import sys

import pytest

import repro
from repro.common.config import CacheConfig, baseline_system
from repro.specs import (
    CompositeSpec,
    MissCacheSpec,
    MultiWayStreamBufferSpec,
    MultiWayStrideBufferSpec,
    SpecError,
    StreamBufferSpec,
    StrideBufferSpec,
    StructureSpec,
    SystemSpec,
    TraceSpec,
    VictimCacheSpec,
    build,
    describe,
    parse_structure_code,
    registered_kinds,
    spec_hash,
    structure_code,
    structure_from_dict,
)
from repro.telemetry import config_hash

#: One default-option and one everything-non-default point per registered
#: structure kind, plus a nested composite.  Every contract test below
#: runs over all of these.
SPEC_POINTS = [
    MissCacheSpec(4),
    MissCacheSpec(2, policy="fifo", track_depths=True),
    VictimCacheSpec(4),
    VictimCacheSpec(6, policy="random", swap_on_hit=False, track_depths=True),
    StreamBufferSpec(4),
    StreamBufferSpec(
        entries=8,
        max_run=32,
        track_run_offsets=True,
        model_availability=True,
        fill_latency=10,
        issue_interval=2,
        head_only=False,
        allocation_filter=True,
    ),
    MultiWayStreamBufferSpec(4, 4),
    MultiWayStreamBufferSpec(ways=2, entries=6, max_run=8, head_only=False),
    StrideBufferSpec(4),
    StrideBufferSpec(entries=2, max_stride=64, min_stride=2, track_run_offsets=True),
    MultiWayStrideBufferSpec(4, 4),
    MultiWayStrideBufferSpec(ways=2, entries=2, max_stride=16),
    CompositeSpec(members=(VictimCacheSpec(4), StreamBufferSpec(4))),
    CompositeSpec(
        members=(
            MissCacheSpec(2, policy="fifo"),
            CompositeSpec(members=(StreamBufferSpec(2), StrideBufferSpec(2))),
        )
    ),
]

point_ids = [f"{type(s).__name__}-{i}" for i, s in enumerate(SPEC_POINTS)]


class TestStructureRoundTrip:
    @pytest.mark.parametrize("spec", SPEC_POINTS, ids=point_ids)
    def test_describe_inverts_build(self, spec):
        assert describe(build(spec)) == spec

    @pytest.mark.parametrize("spec", SPEC_POINTS, ids=point_ids)
    def test_dict_round_trip(self, spec):
        assert structure_from_dict(spec.as_dict()) == spec

    @pytest.mark.parametrize("spec", SPEC_POINTS, ids=point_ids)
    def test_json_round_trip(self, spec):
        assert StructureSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("spec", SPEC_POINTS, ids=point_ids)
    def test_pickle_round_trip(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("spec", SPEC_POINTS, ids=point_ids)
    def test_hashable_and_consistent(self, spec):
        clone = StructureSpec.from_json(spec.to_json())
        assert hash(spec) == hash(clone)
        assert len({spec, clone}) == 1

    def test_none_is_the_bare_baseline(self):
        assert build(None) is None
        assert describe(None) is None

    def test_every_registered_kind_is_covered(self):
        covered = {type(spec).kind for spec in SPEC_POINTS}
        assert covered == set(registered_kinds())

    def test_canonical_json_is_key_sorted(self):
        text = VictimCacheSpec(4).to_json()
        payload = json.loads(text)
        assert text == json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestStructureValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown structure kind"):
            structure_from_dict({"kind": "nonsense"})

    def test_missing_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            structure_from_dict({"entries": 4})

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown fields"):
            structure_from_dict({"kind": "victim_cache", "entries": 4, "bogus": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecError, match="mapping"):
            structure_from_dict("vc4")

    def test_build_rejects_non_specs(self):
        with pytest.raises(SpecError, match="StructureSpec"):
            build("vc4")

    def test_empty_composite_rejected(self):
        with pytest.raises(SpecError, match="at least one member"):
            CompositeSpec(members=())

    def test_composite_members_must_be_specs(self):
        with pytest.raises(SpecError, match="members"):
            CompositeSpec(members=(VictimCacheSpec(4), "sb4"))

    def test_undescribable_structure_raises(self):
        from repro.buffers.stream_buffer import StreamBuffer

        buffer = StreamBuffer(4, fetch_sink=lambda line: None)
        with pytest.raises(SpecError):
            describe(buffer)

    def test_describe_rejects_unknown_objects(self):
        with pytest.raises(SpecError, match="describe"):
            describe(object())


class TestLegacyCodes:
    @pytest.mark.parametrize(
        "code, spec",
        [
            ("none", None),
            ("mc4", MissCacheSpec(4)),
            ("vc8", VictimCacheSpec(8)),
            ("sb4", StreamBufferSpec(4)),
            ("sb4x4", MultiWayStreamBufferSpec(4, 4)),
        ],
    )
    def test_codes_round_trip(self, code, spec):
        assert parse_structure_code(code) == spec
        assert structure_code(spec) == code

    def test_non_default_options_have_no_code(self):
        assert structure_code(VictimCacheSpec(4, swap_on_hit=False)) is None
        assert structure_code(StrideBufferSpec(4)) is None


class TestSystemSpec:
    def _spec(self, **overrides):
        base = dict(
            trace=TraceSpec("ccom", scale=4_000, seed=0),
            config=baseline_system(),
            structure=VictimCacheSpec(4),
            side="d",
            warmup=0,
            classify=False,
        )
        base.update(overrides)
        return SystemSpec(**base)

    def test_json_round_trip(self):
        spec = self._spec()
        assert SystemSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_minimal(self):
        spec = SystemSpec()
        assert SystemSpec.from_json(spec.to_json()) == spec

    def test_pickle_round_trip(self):
        spec = self._spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_equal_specs_serialize_identically(self):
        assert self._spec().to_json() == self._spec().to_json()

    def test_for_level_from_live_objects(self, small_by_name):
        trace = small_by_name["ccom"]
        from repro.buffers.victim_cache import VictimCache

        spec = SystemSpec.for_level(
            trace, CacheConfig(4096, 16), side="d", structure=VictimCache(4)
        )
        assert spec.trace == TraceSpec("ccom", scale=4_000, seed=0)
        assert spec.structure == VictimCacheSpec(4)
        assert SystemSpec.from_json(spec.to_json()) == spec

    def test_for_level_widens_l2_line(self, small_by_name):
        spec = SystemSpec.for_level(small_by_name["ccom"], CacheConfig(16384, 256))
        assert spec.config.l2.line_size == 256

    def test_invalid_side_rejected(self):
        with pytest.raises(Exception, match="side"):
            self._spec(side="x")

    def test_negative_warmup_rejected(self):
        with pytest.raises(Exception, match="warmup"):
            self._spec(warmup=-1)

    def test_structure_must_be_spec(self):
        from repro.buffers.victim_cache import VictimCache

        with pytest.raises(SpecError, match="StructureSpec"):
            self._spec(structure=VictimCache(4))


def _field_variants(base: SystemSpec):
    """One variant of *base* per spec field, labelled."""
    config = base.config
    return {
        "trace.name": dataclasses.replace(base, trace=TraceSpec("liver", 4_000)),
        "trace.scale": dataclasses.replace(base, trace=TraceSpec("ccom", 5_000)),
        "trace.seed": dataclasses.replace(base, trace=TraceSpec("ccom", 4_000, seed=7)),
        "config.dcache.size": dataclasses.replace(
            base, config=dataclasses.replace(config, dcache=CacheConfig(8192, 16))
        ),
        "config.dcache.line": dataclasses.replace(
            base, config=dataclasses.replace(config, dcache=CacheConfig(4096, 32))
        ),
        "config.icache": dataclasses.replace(
            base, config=dataclasses.replace(config, icache=CacheConfig(8192, 16))
        ),
        "config.l2": dataclasses.replace(
            base, config=dataclasses.replace(config, l2=CacheConfig(2 * 1024 * 1024, 128))
        ),
        "config.timing": dataclasses.replace(
            base,
            config=dataclasses.replace(
                config, timing=dataclasses.replace(config.timing, l1_miss_penalty=30)
            ),
        ),
        "structure.kind": dataclasses.replace(base, structure=MissCacheSpec(4)),
        "structure.entries": dataclasses.replace(base, structure=VictimCacheSpec(8)),
        "structure.policy": dataclasses.replace(
            base, structure=VictimCacheSpec(4, policy="fifo")
        ),
        "structure.flag": dataclasses.replace(
            base, structure=VictimCacheSpec(4, swap_on_hit=False)
        ),
        "structure.none": dataclasses.replace(base, structure=None),
        "side": dataclasses.replace(base, side="i"),
        "warmup": dataclasses.replace(base, warmup=100),
        "classify": dataclasses.replace(base, classify=True),
    }


class TestSpecHash:
    BASE = SystemSpec(
        trace=TraceSpec("ccom", scale=4_000, seed=0),
        structure=VictimCacheSpec(4),
        side="d",
    )

    def test_hash_is_deterministic_in_process(self):
        clone = SystemSpec.from_json(self.BASE.to_json())
        assert spec_hash(self.BASE) == spec_hash(clone)

    def test_every_field_perturbs_the_hash(self):
        variants = _field_variants(self.BASE)
        base_hash = spec_hash(self.BASE)
        hashes = {label: spec_hash(spec) for label, spec in variants.items()}
        for label, digest in hashes.items():
            assert digest != base_hash, f"variant {label} did not change the hash"
        assert len(set(hashes.values())) == len(hashes), "two variants collided"

    def test_telemetry_config_hash_tracks_the_spec(self):
        """config_hash() of a spec is the spec-JSON hash, not a repr hash."""
        assert config_hash(self.BASE) == config_hash(
            SystemSpec.from_json(self.BASE.to_json())
        )
        assert config_hash(self.BASE) != config_hash(
            dataclasses.replace(self.BASE, structure=VictimCacheSpec(8))
        )

    def test_hash_is_stable_across_processes(self):
        """Same spec, fresh interpreter, same digest (no repr/id leakage)."""
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        program = (
            "from repro.specs import SystemSpec, spec_hash;"
            "from repro.telemetry import config_hash;"
            "import sys;"
            "spec = SystemSpec.from_json(sys.stdin.read());"
            "print(spec_hash(spec));"
            "print(config_hash(spec))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", program],
            input=self.BASE.to_json(),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        child_spec_hash, child_config_hash = result.stdout.split()
        assert child_spec_hash == spec_hash(self.BASE)
        assert child_config_hash == config_hash(self.BASE)


class TestTraceSpec:
    def test_of_registry_trace(self, small_by_name):
        key = TraceSpec.of(small_by_name["linpack"])
        assert key == TraceSpec("linpack", scale=4_000, seed=0)

    def test_of_handmade_trace_is_none(self):
        from repro.traces.trace import MaterializedTrace, TraceMeta

        trace = MaterializedTrace(TraceMeta(name="adhoc"), [(0, 0)])
        assert TraceSpec.of(trace) is None

    def test_trace_materializes_the_referenced_workload(self):
        key = TraceSpec("ccom", scale=2_000, seed=0)
        trace = key.trace()
        assert trace.name == "ccom"
        assert key.trace() is trace  # memoized

    def test_dict_round_trip(self):
        key = TraceSpec("fppp", scale=3_000, seed=5)
        assert TraceSpec.from_dict(key.as_dict()) == key


class TestTraceCacheCap:
    def test_cap_env_override(self, monkeypatch):
        from repro.experiments.workloads import trace_cache_cap

        monkeypatch.setenv("REPRO_TRACE_CACHE", "3")
        assert trace_cache_cap() == 3
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert trace_cache_cap() == 1
        monkeypatch.setenv("REPRO_TRACE_CACHE", "junk")
        from repro.experiments.workloads import DEFAULT_TRACE_CACHE_CAP

        assert trace_cache_cap() == DEFAULT_TRACE_CACHE_CAP

    def test_memo_evicts_least_recently_used(self, monkeypatch):
        from repro.experiments import workloads

        monkeypatch.setenv("REPRO_TRACE_CACHE", "2")
        monkeypatch.setattr(workloads, "_TRACE_CACHE", type(workloads._TRACE_CACHE)())
        a = workloads.materialized_trace("ccom", 1_000)
        b = workloads.materialized_trace("liver", 1_000)
        assert workloads.materialized_trace("ccom", 1_000) is a  # refreshes ccom
        workloads.materialized_trace("linpack", 1_000)  # evicts liver
        assert workloads.materialized_trace("ccom", 1_000) is a
        assert workloads.materialized_trace("liver", 1_000) is not b
        assert len(workloads._TRACE_CACHE) == 2
