"""Tests for the bench-regression layer (`repro-bench diff`).

The gate's contract: exit 0 when every shared benchmark is within
tolerance, exit 1 when any regressed beyond it, exit 2 on usage/file
errors; renamed/added benchmarks are reported but never fail the diff.
"""

import json

import pytest

from repro.telemetry.bench import BenchDelta, diff_benchmarks, load_benchmark_stats
from repro.telemetry.cli import main


def write_bench_json(path, means):
    """A minimal pytest-benchmark JSON file with the given name->mean map."""
    payload = {
        "machine_info": {"node": "test"},
        "benchmarks": [
            {
                "name": name,
                "fullname": f"benchmarks/test_x.py::{name}",
                "stats": {
                    "mean": mean,
                    "median": mean,
                    "min": mean * 0.9,
                    "max": mean * 1.1,
                    "stddev": 0.0,
                    "rounds": 3,
                },
            }
            for name, mean in means.items()
        ],
    }
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.fixture
def baseline(tmp_path):
    return write_bench_json(
        tmp_path / "baseline.json", {"test_a": 1.0, "test_b": 0.5, "test_gone": 2.0}
    )


class TestLoadStats:
    def test_loads_requested_metric(self, baseline):
        stats = load_benchmark_stats(baseline, "mean")
        assert stats == {"test_a": 1.0, "test_b": 0.5, "test_gone": 2.0}
        assert load_benchmark_stats(baseline, "min")["test_a"] == pytest.approx(0.9)

    def test_rejects_unknown_metric(self, baseline):
        with pytest.raises(ValueError, match="metric"):
            load_benchmark_stats(baseline, "p99")

    def test_rejects_non_benchmark_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="benchmarks"):
            load_benchmark_stats(str(path))


class TestDelta:
    def test_ratio_and_regression(self):
        delta = BenchDelta("x", baseline=1.0, current=1.3)
        assert delta.ratio == pytest.approx(1.3)
        assert delta.percent_change == pytest.approx(30.0)
        assert delta.regressed(0.25)
        assert not delta.regressed(0.35)

    def test_boundary_is_not_a_regression(self):
        # current == baseline * (1 + tolerance) is within tolerance.
        assert not BenchDelta("x", 1.0, 1.25).regressed(0.25)

    def test_zero_baseline(self):
        assert BenchDelta("x", 0.0, 0.0).ratio == 1.0
        assert BenchDelta("x", 0.0, 0.1).ratio == float("inf")


class TestDiff:
    def test_within_tolerance_passes(self, tmp_path, baseline):
        current = write_bench_json(
            tmp_path / "current.json", {"test_a": 1.1, "test_b": 0.55, "test_gone": 2.0}
        )
        diff = diff_benchmarks(baseline, current, tolerance=0.25)
        assert diff.ok
        assert diff.regressions == []

    def test_injected_regression_fails(self, tmp_path, baseline):
        current = write_bench_json(
            tmp_path / "current.json", {"test_a": 2.0, "test_b": 0.5, "test_gone": 2.0}
        )
        diff = diff_benchmarks(baseline, current, tolerance=0.25)
        assert not diff.ok
        assert [d.name for d in diff.regressions] == ["test_a"]

    def test_improvement_never_fails(self, tmp_path, baseline):
        current = write_bench_json(
            tmp_path / "current.json", {"test_a": 0.1, "test_b": 0.05, "test_gone": 0.2}
        )
        assert diff_benchmarks(baseline, current, tolerance=0.0).ok

    def test_missing_and_added_reported_but_pass(self, tmp_path, baseline):
        current = write_bench_json(tmp_path / "current.json", {"test_a": 1.0, "test_new": 9.9})
        diff = diff_benchmarks(baseline, current, tolerance=0.25)
        assert diff.ok
        assert set(diff.missing) == {"test_b", "test_gone"}
        assert list(diff.added) == ["test_new"]
        rendered = diff.render()
        assert "missing from current run" in rendered
        assert "new benchmark" in rendered

    def test_render_flags_regressions(self, tmp_path, baseline):
        current = write_bench_json(
            tmp_path / "current.json", {"test_a": 3.0, "test_b": 0.5, "test_gone": 2.0}
        )
        rendered = diff_benchmarks(baseline, current, tolerance=0.25).render()
        assert "REGRESSED" in rendered
        assert "1 regression(s)" in rendered

    def test_negative_tolerance_rejected(self, tmp_path, baseline):
        current = write_bench_json(tmp_path / "current.json", {"test_a": 1.0})
        with pytest.raises(ValueError, match="tolerance"):
            diff_benchmarks(baseline, current, tolerance=-0.1)


class TestCli:
    def test_pass_exit_zero(self, tmp_path, baseline, capsys):
        current = write_bench_json(
            tmp_path / "current.json", {"test_a": 1.0, "test_b": 0.5, "test_gone": 2.0}
        )
        assert main(["diff", current, "--baseline", baseline]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, baseline, capsys):
        current = write_bench_json(
            tmp_path / "current.json", {"test_a": 5.0, "test_b": 0.5, "test_gone": 2.0}
        )
        assert main(["diff", current, "--baseline", baseline, "--tolerance", "0.25"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path, baseline):
        current = write_bench_json(
            tmp_path / "current.json", {"test_a": 1.5, "test_b": 0.5, "test_gone": 2.0}
        )
        assert main(["diff", current, "--baseline", baseline, "--tolerance", "0.25"]) == 1
        assert main(["diff", current, "--baseline", baseline, "--tolerance", "0.6"]) == 0

    def test_metric_flag(self, tmp_path, baseline):
        current = write_bench_json(
            tmp_path / "current.json", {"test_a": 1.0, "test_b": 0.5, "test_gone": 2.0}
        )
        assert main(["diff", current, "--baseline", baseline, "--metric", "min"]) == 0

    def test_missing_file_exit_two(self, tmp_path, capsys):
        assert main(["diff", str(tmp_path / "nope.json"), "--baseline", str(tmp_path / "x")]) == 2
        assert "repro-bench:" in capsys.readouterr().err
