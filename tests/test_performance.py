"""Unit tests for the system performance model (Figures 2-2 / 5-1)."""

import pytest

from repro.common.config import TimingConfig
from repro.common.types import IFETCH, LOAD
from repro.hierarchy.performance import SystemPerformance, evaluate_performance
from repro.hierarchy.system import MemorySystem


def make_perf(**overrides):
    defaults = dict(
        instructions=1000,
        l1i_miss_time=0,
        l1d_miss_time=0,
        l2_miss_time=0,
        removed_miss_time=0,
        stall_time=0,
    )
    defaults.update(overrides)
    return SystemPerformance(**defaults)


class TestArithmetic:
    def test_perfect_machine(self):
        perf = make_perf()
        assert perf.total_time == 1000
        assert perf.percent_of_potential == 100.0
        assert perf.cycles_per_instruction == 1.0
        assert perf.memory_time == 0

    def test_total_time_sums_components(self):
        perf = make_perf(l1i_miss_time=240, l1d_miss_time=120, l2_miss_time=640,
                         removed_miss_time=10, stall_time=5)
        assert perf.total_time == 1000 + 240 + 120 + 640 + 10 + 5

    def test_percent_of_potential(self):
        perf = make_perf(l1i_miss_time=1000)
        assert perf.percent_of_potential == 50.0

    def test_speedup_over(self):
        fast = make_perf()
        slow = make_perf(l1i_miss_time=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_loss_breakdown_sums_to_100(self):
        perf = make_perf(l1i_miss_time=300, l1d_miss_time=200, l2_miss_time=100,
                         removed_miss_time=50, stall_time=25)
        breakdown = perf.loss_breakdown()
        assert sum(breakdown.values()) == pytest.approx(100.0)

    def test_zero_instructions(self):
        perf = make_perf(instructions=0)
        assert perf.percent_of_potential == 100.0
        assert perf.cycles_per_instruction == 1.0


class TestEvaluateFromSimulation:
    def test_miss_costs_applied(self):
        timing = TimingConfig()
        system = MemorySystem()
        # 1 instruction (i-miss -> L2 miss), 1 load (d-miss -> L2 miss)
        system.access(IFETCH, 0x10000)
        system.access(LOAD, 0x90000)
        perf = evaluate_performance(system.result(), timing)
        assert perf.instructions == 1
        assert perf.l1i_miss_time == 24
        assert perf.l1d_miss_time == 24
        assert perf.l2_miss_time == 2 * 320
        assert perf.removed_miss_time == 0

    def test_removed_misses_cost_one_cycle(self):
        from repro.buffers.victim_cache import VictimCache

        timing = TimingConfig()
        system = MemorySystem(daugmentation=VictimCache(2))
        system.access(LOAD, 0)
        system.access(LOAD, 4096)
        system.access(LOAD, 0)  # victim hit
        perf = evaluate_performance(system.result(), timing)
        assert perf.removed_miss_time == 1
        assert perf.l1d_miss_time == 2 * 24

    def test_custom_penalties(self):
        timing = TimingConfig(l1_miss_penalty=10, l2_miss_penalty=100)
        system = MemorySystem()
        system.access(LOAD, 0)
        perf = evaluate_performance(system.result(), timing)
        assert perf.l1d_miss_time == 10
        assert perf.l2_miss_time == 100

    def test_improvement_direction_matches_paper(self, small_by_name):
        """Adding the paper's structures must never slow the machine."""
        from repro.experiments.figure_5_1 import improved_augmentations

        timing = TimingConfig()
        trace = small_by_name["met"]
        base = evaluate_performance(MemorySystem().run(trace), timing)
        iaug, daug = improved_augmentations()
        improved_system = MemorySystem(iaugmentation=iaug, daugmentation=daug)
        improved = evaluate_performance(improved_system.run(trace), timing)
        assert improved.speedup_over(base) > 1.0
