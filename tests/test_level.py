"""Unit tests for CacheLevel and LevelStats."""

import pytest

from repro.buffers.base import CompositeAugmentation, NullAugmentation
from repro.buffers.stream_buffer import StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.types import AccessOutcome
from repro.hierarchy.level import CacheLevel, LevelStats


class TestLevelStats:
    def test_initial_state(self):
        stats = LevelStats()
        assert stats.accesses == 0
        assert stats.miss_rate == 0.0
        assert stats.effective_miss_rate == 0.0

    def test_demand_misses_count_removed_ones(self):
        """The paper counts helper hits as removed misses, not hits."""
        stats = LevelStats()
        stats.record(AccessOutcome.HIT)
        stats.record(AccessOutcome.VICTIM_HIT)
        stats.record(AccessOutcome.MISS)
        assert stats.hits == 1
        assert stats.demand_misses == 2
        assert stats.removed_misses == 1
        assert stats.misses_to_next_level == 1
        assert stats.miss_rate == pytest.approx(2 / 3)
        assert stats.effective_miss_rate == pytest.approx(1 / 3)

    def test_equal_instances_hash_equal(self):
        """Regression: ``__eq__`` without ``__hash__`` made LevelStats
        unhashable (``__hash__`` was implicitly None)."""
        assert LevelStats() == LevelStats()
        assert hash(LevelStats()) == hash(LevelStats())

    def test_usable_in_hash_containers(self):
        a, b = LevelStats(), LevelStats()
        b.record(AccessOutcome.HIT)
        assert a != b
        assert len({a, b}) == 2
        assert {a: "zeroed"}[LevelStats()] == "zeroed"

    def test_as_dict_snapshot(self):
        stats = LevelStats()
        stats.record(AccessOutcome.HIT)
        stats.record(AccessOutcome.MISS)
        snapshot = stats.as_dict()
        assert snapshot["accesses"] == 2
        assert snapshot["hits"] == 1
        assert snapshot["misses_to_next_level"] == 1
        assert snapshot["demand_misses"] == 1


class TestCacheLevel:
    def test_defaults_to_null_augmentation(self, l1_config):
        level = CacheLevel(l1_config)
        assert isinstance(level.augmentation, NullAugmentation)
        assert level.classifier is None

    def test_byte_and_line_access_agree(self, l1_config):
        by_byte = CacheLevel(l1_config)
        by_line = CacheLevel(l1_config)
        for address in (0, 4, 16, 4096, 4100):
            assert by_byte.access(address) == by_line.access_line(address >> 4)

    def test_hit_after_fill(self, l1_config):
        level = CacheLevel(l1_config)
        assert level.access_line(9) is AccessOutcome.MISS
        assert level.access_line(9) is AccessOutcome.HIT

    def test_outcome_labels_the_satisfying_structure(self, l1_config):
        level = CacheLevel(l1_config, VictimCache(2))
        level.access_line(0)
        level.access_line(256)  # evicts 0 into the VC
        assert level.access_line(0) is AccessOutcome.VICTIM_HIT

    def test_l1_refilled_even_on_removed_miss(self, l1_config):
        level = CacheLevel(l1_config, VictimCache(2))
        level.access_line(0)
        level.access_line(256)
        level.access_line(0)   # victim hit; 0 must now be in L1
        assert level.cache.probe(0)
        assert not level.cache.probe(256)

    def test_stall_cycles_accumulate(self, l1_config):
        buffer = StreamBuffer(
            entries=4, model_availability=True, fill_latency=12, issue_interval=4
        )
        level = CacheLevel(l1_config, buffer)
        level.access_line(100, now=0)
        level.access_line(101, now=2)  # head not ready yet
        assert level.stats.stream_stall_cycles > 0

    def test_classifier_sees_all_accesses(self, l1_config):
        level = CacheLevel(l1_config, classify=True)
        for line in (1, 2, 1, 1):
            level.access_line(line)
        assert level.classifier.accesses == 4

    def test_reset(self, l1_config):
        level = CacheLevel(l1_config, VictimCache(2), classify=True)
        for line in (0, 256, 0):
            level.access_line(line)
        level.reset()
        assert level.stats.accesses == 0
        assert level.cache.occupancy() == 0
        assert level.augmentation.occupancy() == 0
        assert level.classifier.accesses == 0

    def test_line_of(self, l1_config):
        level = CacheLevel(l1_config)
        assert level.line_of(0x1234) == 0x123


class TestCompositeThroughLevel:
    def test_first_satisfying_member_wins(self, l1_config):
        composite = CompositeAugmentation([VictimCache(4), StreamBuffer(4)])
        level = CacheLevel(l1_config, composite)
        level.access_line(0)
        level.access_line(256)
        # 0 is in the victim cache; stream buffer was allocated at 257.
        assert level.access_line(0) is AccessOutcome.VICTIM_HIT

    def test_all_members_observe_every_miss(self, l1_config):
        victim = VictimCache(4)
        stream = StreamBuffer(4)
        composite = CompositeAugmentation([victim, stream])
        level = CacheLevel(l1_config, composite)
        for line in (0, 256, 512):
            level.access_line(line)
        assert victim.lookups == 3
        assert stream.lookups == 3

    def test_overlap_counted(self, l1_config):
        victim = VictimCache(4)
        stream = StreamBuffer(4)
        composite = CompositeAugmentation([victim, stream])
        level = CacheLevel(l1_config, composite)
        level.access_line(0)    # SB allocated at 1..4
        level.access_line(256)  # flush SB -> 257..; 0 into VC
        level.access_line(0)    # VC hit; SB reallocates at 1..
        level.access_line(1)    # SB hit (head); also in VC (victim of 0's fill? no)
        # Engineer a genuine double hit: 256 is in VC (evicted by 0),
        # and the SB head is 2 after the hit on 1.
        level.access_line(2)    # SB hit
        assert composite.total_misses == 5
        assert composite.overlap_hits >= 0  # counted, never negative

    def test_rejects_empty_members(self):
        with pytest.raises(ValueError):
            CompositeAugmentation([])

    def test_composite_reset(self, l1_config):
        victim = VictimCache(4)
        composite = CompositeAugmentation([victim])
        level = CacheLevel(l1_config, composite)
        for line in (0, 256, 0):
            level.access_line(line)
        composite.reset()
        assert composite.total_misses == 0
        assert victim.hits == 0
