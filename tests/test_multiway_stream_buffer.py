"""Unit tests for the multi-way stream buffer (paper §4.2)."""

import pytest

from repro.buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.common.types import AccessOutcome
from repro.hierarchy.level import CacheLevel


class TestConstruction:
    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            MultiWayStreamBuffer(ways=0)

    def test_name_reflects_shape(self):
        assert MultiWayStreamBuffer(ways=4, entries=4).name == "stream_buffer[4x4]"


class TestInterleavedStreams:
    def test_follows_four_interleaved_streams(self):
        """§4.2's motivation: interleaved streams flush a single buffer
        but are tracked concurrently by four."""
        bases = (1000, 2000, 3000, 4000)
        pattern = []
        for offset in range(30):
            for base in bases:
                pattern.append(base + offset)

        multi = MultiWayStreamBuffer(ways=4, entries=4)
        hits = sum(1 for line in pattern if multi.lookup_on_miss(line, 0).satisfied)
        # Everything after the four allocating misses hits.
        assert hits == len(pattern) - 4

        single = StreamBuffer(entries=4)
        single.reset()
        single_hits = sum(
            1 for line in pattern if single.lookup_on_miss(line, 0).satisfied
        )
        assert single_hits == 0  # flushed on every alternation

    def test_lru_way_allocation(self):
        multi = MultiWayStreamBuffer(ways=2, entries=2)
        multi.lookup_on_miss(100, 0)  # way A <- stream 100
        multi.lookup_on_miss(200, 1)  # way B <- stream 200
        multi.lookup_on_miss(101, 2)  # hit in A; A becomes MRU
        multi.lookup_on_miss(300, 3)  # allocates LRU way (B)
        assert multi.lookup_on_miss(102, 4).satisfied  # A survived
        assert multi.lookup_on_miss(301, 5).satisfied  # new stream lives
        assert not multi.lookup_on_miss(201, 6).satisfied  # B's stream gone

    def test_hit_reports_stream_outcome(self):
        multi = MultiWayStreamBuffer(ways=2, entries=2)
        multi.lookup_on_miss(50, 0)
        result = multi.lookup_on_miss(51, 1)
        assert result.satisfied
        assert result.outcome is AccessOutcome.STREAM_HIT

    def test_counters(self):
        multi = MultiWayStreamBuffer(ways=2, entries=2)
        multi.lookup_on_miss(50, 0)
        multi.lookup_on_miss(51, 1)
        multi.lookup_on_miss(99, 2)
        assert multi.lookups == 3
        assert multi.hits == 1

    def test_reset(self):
        multi = MultiWayStreamBuffer(ways=2, entries=2, track_run_offsets=True)
        multi.lookup_on_miss(50, 0)
        multi.lookup_on_miss(51, 1)
        multi.reset()
        assert multi.hits == 0 and multi.lookups == 0
        assert multi.run_offsets.total() == 0
        assert all(not buf.buffered_lines() for buf in multi.way_buffers())


class TestAggregation:
    def test_run_offsets_merge_across_ways(self):
        multi = MultiWayStreamBuffer(ways=2, entries=2, track_run_offsets=True)
        multi.lookup_on_miss(100, 0)
        multi.lookup_on_miss(200, 1)
        multi.lookup_on_miss(101, 2)
        multi.lookup_on_miss(201, 3)
        assert multi.run_offsets.counts == {1: 2}

    def test_run_offsets_none_when_untracked(self):
        multi = MultiWayStreamBuffer(ways=2, entries=2)
        assert multi.run_offsets is None

    def test_prefetch_count_aggregates(self):
        multi = MultiWayStreamBuffer(ways=2, entries=3)
        multi.lookup_on_miss(100, 0)
        multi.lookup_on_miss(200, 1)
        assert multi.prefetches_issued == 6

    def test_one_way_equals_single_buffer(self, l1_config):
        import random

        rng = random.Random(11)
        pattern = [rng.randrange(2048) for _ in range(1500)]
        single_level = CacheLevel(l1_config, StreamBuffer(entries=4))
        multi_level = CacheLevel(l1_config, MultiWayStreamBuffer(ways=1, entries=4))
        for line in pattern:
            single_level.access_line(line)
            multi_level.access_line(line)
        assert (
            single_level.stats.outcomes == multi_level.stats.outcomes
        )


class TestInstructionSideEquivalence:
    def test_multiway_barely_beats_single_on_code(self, small_by_name):
        """§4.2: 'the performance on the instruction stream remains
        virtually unchanged' with a multi-way buffer."""
        config = CacheConfig(4096, 16)
        stream = small_by_name["ccom"].instruction_addresses
        results = {}
        for label, buffer in (
            ("single", StreamBuffer(4)),
            ("multi", MultiWayStreamBuffer(4, 4)),
        ):
            level = CacheLevel(config, buffer)
            for address in stream:
                level.access_line(address >> 4)
            results[label] = level.stats.removed_misses
        assert results["multi"] >= results["single"]
        assert results["multi"] <= results["single"] * 1.25
