"""Tests for the repro-trace command-line tool."""

import pytest

from repro.traces.cli import build_parser, main
from repro.traces.io import load_trace


class TestParser:
    def test_gen_args(self):
        args = build_parser().parse_args(["gen", "ccom", "-o", "x.trc", "--scale", "100"])
        assert args.command == "gen"
        assert args.workload == "ccom"
        assert args.scale == 100

    def test_gen_accepts_extension_workloads(self):
        args = build_parser().parse_args(["gen", "matcol", "-o", "x.trc"])
        assert args.workload == "matcol"

    def test_gen_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gen", "bogus", "-o", "x.trc"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGen:
    def test_writes_binary_trace(self, tmp_path, capsys):
        path = tmp_path / "met.trc"
        assert main(["gen", "met", "-o", str(path), "--scale", "500"]) == 0
        assert "wrote" in capsys.readouterr().out
        trace = load_trace(path)
        assert trace.stats().instructions == 500

    def test_seed_determinism(self, tmp_path):
        a = tmp_path / "a.trc"
        b = tmp_path / "b.trc"
        main(["gen", "liver", "-o", str(a), "--scale", "400", "--seed", "5"])
        main(["gen", "liver", "-o", str(b), "--scale", "400", "--seed", "5"])
        assert a.read_bytes() == b.read_bytes()

    def test_text_output_by_suffix(self, tmp_path):
        path = tmp_path / "t.din"
        main(["gen", "yacc", "-o", str(path), "--scale", "100"])
        assert path.read_text().splitlines()[0].startswith("0 ")


class TestStats:
    def test_reports_counts(self, tmp_path, capsys):
        path = tmp_path / "x.trc"
        main(["gen", "linpack", "-o", str(path), "--scale", "300"])
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "instructions:     300" in out
        assert "data/instr:" in out
        assert "footprint" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "none.trc")]) == 1
        assert "error:" in capsys.readouterr().err


class TestConvert:
    def test_roundtrip_binary_to_text(self, tmp_path):
        binary = tmp_path / "x.trc"
        text = tmp_path / "x.din"
        main(["gen", "grr", "-o", str(binary), "--scale", "200"])
        assert main(["convert", str(binary), str(text)]) == 0
        assert list(load_trace(binary)) == list(load_trace(text))

    def test_corrupt_source_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.trc"
        bad.write_bytes(b"garbage!")
        assert main(["convert", str(bad), str(tmp_path / "out.din")]) == 1
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "met.trc"
        main(["gen", "met", "-o", str(path), "--scale", "1500"])
        return str(path)

    def test_baseline_only(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["simulate", trace_file]) == 0
        out = capsys.readouterr().out
        assert "baseline I miss rate" in out
        assert "with the requested structures" not in out

    def test_victim_and_stream(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["simulate", trace_file, "--victim", "4", "--stream", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "misses removed" in out
        assert "speedup" in out

    def test_classify_breakdown(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["simulate", trace_file, "--classify"]) == 0
        out = capsys.readouterr().out
        assert "compulsory" in out and "conflict" in out

    def test_custom_geometry(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["simulate", trace_file, "--cache-kb", "8", "--line", "32"]) == 0
        assert "8KB direct-mapped, 32B lines" in capsys.readouterr().out

    def test_rejects_both_victim_and_miss_cache(self, trace_file, capsys):
        assert main(["simulate", trace_file, "--victim", "2", "--miss-cache", "2"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_rejects_bad_stream_spec(self, trace_file, capsys):
        assert main(["simulate", trace_file, "--stream", "wat"]) == 1
        assert "WAYSxENTRIES" in capsys.readouterr().err

    def test_single_way_stream(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["simulate", trace_file, "--stream", "1x4"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_miss_cache_option(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["simulate", trace_file, "--miss-cache", "2"]) == 0
        assert "misses removed" in capsys.readouterr().out
