"""Tests for the §4.1 sequential-fetch bandwidth model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hierarchy.bandwidth import (
    FetchMechanism,
    PipelinedMemoryInterface,
    bandwidth_sweep,
    sequential_fetch_cpi,
)


class TestPipelinedInterface:
    def test_latency_applied(self):
        interface = PipelinedMemoryInterface(latency=12, issue_interval=4)
        assert interface.request(0) == 12

    def test_issue_interval_back_pressure(self):
        interface = PipelinedMemoryInterface(latency=12, issue_interval=4)
        assert interface.request(0) == 12
        assert interface.request(0) == 16   # issued at 4
        assert interface.request(0) == 20   # issued at 8

    def test_idle_interface_issues_immediately(self):
        interface = PipelinedMemoryInterface(latency=10, issue_interval=4)
        interface.request(0)
        assert interface.request(100) == 110

    def test_reset(self):
        interface = PipelinedMemoryInterface()
        interface.request(0)
        interface.reset()
        assert interface.request(0) == interface.latency

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PipelinedMemoryInterface(latency=0)
        with pytest.raises(ConfigurationError):
            PipelinedMemoryInterface(issue_interval=0)


class TestPaperWorkedExample:
    """§4.1: 12-cycle latency, one request per 4 cycles, 4-instr lines."""

    def test_stream_buffer_sustains_one_per_cycle(self):
        assert sequential_fetch_cpi(FetchMechanism.STREAM, 12, 4) == pytest.approx(1.0)

    def test_tagged_prefetch_one_every_three_cycles(self):
        assert sequential_fetch_cpi(FetchMechanism.TAGGED, 12, 4) == pytest.approx(3.0)

    def test_demand_fetch_pays_full_latency(self):
        # 12 cycles latency + 4 cycles consuming = 16 cycles / 4 instr.
        assert sequential_fetch_cpi(FetchMechanism.DEMAND, 12, 4) == pytest.approx(4.0)


class TestScalingBehaviour:
    def test_stream_holds_one_cpi_within_coverage(self):
        # 4 entries x 4-cycle issue: covered up to latency ~16.
        for latency in (4, 8, 12, 16):
            assert sequential_fetch_cpi(
                FetchMechanism.STREAM, latency, 4
            ) == pytest.approx(1.0)

    def test_stream_degrades_gracefully_beyond_coverage(self):
        cpi_24 = sequential_fetch_cpi(FetchMechanism.STREAM, 24, 4)
        cpi_48 = sequential_fetch_cpi(FetchMechanism.STREAM, 48, 4)
        tagged_48 = sequential_fetch_cpi(FetchMechanism.TAGGED, 48, 4)
        assert 1.0 < cpi_24 < cpi_48 < tagged_48

    def test_more_entries_cover_longer_latency(self):
        shallow = sequential_fetch_cpi(FetchMechanism.STREAM, 32, 4, buffer_entries=4)
        deep = sequential_fetch_cpi(FetchMechanism.STREAM, 32, 4, buffer_entries=12)
        assert deep < shallow
        assert deep == pytest.approx(1.0)

    def test_mechanism_ordering_universal(self):
        for latency in (4, 8, 16, 32):
            demand = sequential_fetch_cpi(FetchMechanism.DEMAND, latency, 4)
            tagged = sequential_fetch_cpi(FetchMechanism.TAGGED, latency, 4)
            stream = sequential_fetch_cpi(FetchMechanism.STREAM, latency, 4)
            assert stream <= tagged <= demand

    def test_sweep_shape(self):
        points = bandwidth_sweep([8, 12, 24])
        assert [p.latency for p in points] == [8, 12, 24]
        for point in points:
            assert point.stream_cpi <= point.tagged_cpi <= point.demand_cpi

    def test_needs_two_lines(self):
        with pytest.raises(ConfigurationError):
            sequential_fetch_cpi(FetchMechanism.DEMAND, 12, 4, lines=1)

    def test_cpi_floor_is_one(self):
        # Nothing can beat one instruction per cycle.
        assert sequential_fetch_cpi(FetchMechanism.STREAM, 1, 1) >= 1.0
