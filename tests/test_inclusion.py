"""Tests for the §3.5 inclusion monitor."""

import pytest

from repro.classify.inclusion import InclusionMonitor
from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError

L1 = CacheConfig(256, 16)          # 16 lines
L2_MATCHED = CacheConfig(1024, 16)
L2_WIDE = CacheConfig(1024, 64)


class TestConstruction:
    def test_rejects_smaller_l2_lines(self):
        with pytest.raises(ConfigurationError):
            InclusionMonitor(CacheConfig(256, 32), CacheConfig(1024, 16))

    def test_rejects_bad_sample_interval(self):
        with pytest.raises(ConfigurationError):
            InclusionMonitor(L1, L2_MATCHED, sample_interval=0)


class TestMatchedLines:
    def test_direct_mapped_matched_lines_preserve_inclusion(self):
        """With matched line sizes and L2 index bits a superset of L1's,
        a fill that evicts X from the L2 has already evicted X from L1
        on the same access — no violation window."""
        import random

        rng = random.Random(1)
        monitor = InclusionMonitor(L1, L2_MATCHED)
        report = monitor.run(rng.randrange(1 << 16) for _ in range(3000))
        assert report.steps_with_violation == 0


class TestWideLines:
    def test_wide_l2_lines_violate_inclusion(self):
        """§3.5: the baseline's larger L2 lines violate inclusion —
        evicting one L2 line can orphan several resident L1 lines."""
        # Touch four 16B L1 lines inside one 64B L2 line, then evict
        # that L2 line with a conflicting access that maps to a
        # *different* L1 set (so the L1 lines stay resident).
        monitor = InclusionMonitor(L1, L2_WIDE)
        for offset in range(0, 64, 16):
            monitor.access(offset)              # L2 line 0; L1 lines 0..3
        monitor.access(1024 + 64)               # L2 set 1? compute: line (1088>>6)=17 % 16 = 1
        monitor.access(1024)                    # L2 line 16 -> set 0: evicts L2 line 0, L1 set 0
        report = monitor.report
        assert report.steps_with_violation > 0
        # L1 lines 1,2,3 (offsets 16,32,48) remain resident, unbacked.
        assert report.peak_violations >= 3


class TestVictimCacheViolations:
    def test_victim_cache_adds_violations(self):
        """§3.5: victim caches violate inclusion — the victim cache can
        hold lines whose L2 line has been replaced."""
        monitor = InclusionMonitor(L1, L2_MATCHED, victim_entries=4)
        monitor.access(0)          # L1 line 0, L2 line 0
        monitor.access(256)        # same L1 set: 0 evicted into the VC
        # Now churn the L2 set holding line 0: L2 has 64 sets (1024/16),
        # line 0 -> set 0; line 64 -> set 0.
        monitor.access(64 * 16)    # wait: byte address for L2 line 64
        report = monitor.report
        # Line 0 sits in the VC; once its L2 copy is replaced the VC
        # holds an unbacked line.
        assert report.victim_cache_violations > 0

    def test_report_rates(self):
        monitor = InclusionMonitor(L1, L2_MATCHED)
        monitor.access(0)
        report = monitor.report
        assert report.accesses == 1
        assert 0.0 <= report.violation_rate <= 1.0


class TestSampling:
    def test_sampling_reduces_observations(self):
        import random

        rng = random.Random(2)
        addresses = [rng.randrange(1 << 14) for _ in range(1000)]
        dense = InclusionMonitor(L1, L2_WIDE, sample_interval=1)
        sparse = InclusionMonitor(L1, L2_WIDE, sample_interval=10)
        dense.run(addresses)
        sparse.run(iter(addresses))
        assert dense.report.accesses == 1000
        assert sparse.report.accesses == 100
