"""Tests for steady-state warm-up measurement."""

from repro.common.config import CacheConfig
from repro.common.types import MissKind
from repro.experiments.runner import run_level
from repro.hierarchy.level import CacheLevel

CONFIG = CacheConfig(256, 16)  # 16 lines


class TestResetStats:
    def test_counters_zeroed_state_kept(self):
        level = CacheLevel(CONFIG, classify=True)
        level.access_line(1)
        level.access_line(2)
        level.reset_stats()
        assert level.stats.accesses == 0
        # Cache contents survive: the next access is a hit.
        assert level.access_line(1).name == "HIT"

    def test_classifier_keeps_first_reference_history(self):
        level = CacheLevel(CONFIG, classify=True)
        level.access_line(1)        # compulsory (warm-up)
        level.access_line(17)       # same set: evicts 1
        level.reset_stats()
        # 1 was referenced during warm-up, so its re-miss is a CONFLICT
        # (the 16-entry shadow still holds it), not compulsory.
        level.access_line(1)
        assert level.classifier.counts[MissKind.COMPULSORY] == 0
        assert level.classifier.conflict_misses == 1

    def test_classifier_shadow_state_kept(self):
        level = CacheLevel(CONFIG, classify=True)
        for line in range(20):       # overflow the 16-entry shadow
            level.access_line(line)
        level.reset_stats()
        level.access_line(0)         # evicted from shadow: capacity
        assert level.classifier.capacity_misses == 1


class TestRunLevelWarmup:
    def test_warmup_discounts_cold_misses(self):
        # One pass over 8 lines, repeated: with warm-up covering the
        # first pass, the second pass is all hits.
        addresses = [line * 16 for line in range(8)] * 2
        cold = run_level(addresses, CONFIG)
        warm = run_level(addresses, CONFIG, warmup=8)
        assert cold.misses == 8
        assert warm.misses == 0
        assert warm.stats.accesses == 8

    def test_zero_warmup_is_default_behaviour(self):
        addresses = [line * 16 for line in range(8)]
        assert (
            run_level(addresses, CONFIG).misses
            == run_level(addresses, CONFIG, warmup=0).misses
        )

    def test_warmup_longer_than_trace_measures_nothing(self):
        addresses = [0, 16, 32]
        run = run_level(addresses, CONFIG, warmup=10)
        assert run.stats.accesses == 3  # warmup point never reached

    def test_warmup_with_augmentation_keeps_structure_state(self):
        from repro.buffers.victim_cache import VictimCache

        # Conflict pair: warmed victim cache hits immediately after reset.
        addresses = [0, 256, 0, 256, 0, 256]
        run = run_level(addresses, CONFIG, VictimCache(1), warmup=2)
        assert run.stats.accesses == 4
        assert run.removed == 4

    def test_steady_rate_at_most_slightly_above_cold(self, small_by_name):
        addresses = small_by_name["grr"].data_addresses
        cold = run_level(addresses, CONFIG)
        warm = run_level(addresses, CONFIG, warmup=len(addresses) // 3)
        assert warm.stats.miss_rate <= cold.stats.miss_rate * 1.15
