"""Tests for the Markdown report generator."""

import pytest

from repro.experiments.report import generate_report, write_report


class TestGenerateReport:
    def test_selected_experiments_only(self, small_suite):
        text = generate_report(["table_1_1"], traces=small_suite)
        assert "## table_1_1" in text
        assert "## table_2_2" not in text

    def test_unknown_experiment_rejected(self, small_suite):
        with pytest.raises(KeyError, match="bogus"):
            generate_report(["bogus"], traces=small_suite)

    def test_header_names_the_paper(self, small_suite):
        text = generate_report(["table_1_1"], traces=small_suite)
        assert "Improving Direct-Mapped Cache Performance" in text
        assert "Suite: ccom, grr, yacc, met, linpack, liver" in text

    def test_figures_get_charts(self, small_suite):
        text = generate_report(["figure_4_6"], traces=small_suite)
        assert "A = single, I-cache" in text

    def test_charts_can_be_disabled(self, small_suite):
        text = generate_report(
            ["figure_4_6"], traces=small_suite, include_charts=False
        )
        assert "A = single, I-cache" not in text

    def test_tables_get_no_charts(self, small_suite):
        text = generate_report(["table_1_1"], traces=small_suite)
        assert "A = " not in text

    def test_code_fences_balanced(self, small_suite):
        text = generate_report(["table_1_1", "figure_3_1"], traces=small_suite)
        assert text.count("```") % 2 == 0


class TestWriteReport:
    def test_writes_file(self, tmp_path, small_suite):
        path = write_report(
            tmp_path / "report.md", ["table_1_1"], traces=small_suite
        )
        assert path.exists()
        assert "## table_1_1" in path.read_text()

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        target = tmp_path / "out.md"
        assert main(["table_1_1", "--report", str(target), "--scale", "300"]) == 0
        assert target.exists()
        assert "wrote report" in capsys.readouterr().out
