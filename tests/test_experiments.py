"""Integration tests: every experiment module runs and is well-formed.

These run on the small shared suite; the *shape* assertions that need
statistical weight live in test_paper_claims.py.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.base import FigureResult, TableResult

BENCHES = ["ccom", "grr", "yacc", "met", "linpack", "liver"]


@pytest.fixture(scope="module")
def results(small_suite):
    return {name: run(traces=small_suite) for name, run in ALL_EXPERIMENTS.items()}


class TestAllExperiments:
    def test_registry_covers_every_paper_artifact(self):
        expected = {
            "table_1_1", "table_2_1", "table_2_2",
            "figure_2_2", "figure_3_1", "figure_3_3", "figure_3_5",
            "figure_3_6", "figure_3_7", "figure_4_1", "figure_4_3",
            "figure_4_5", "figure_4_6", "figure_4_7", "figure_5_1",
            "overlap_5", "ext_l2_victim", "ext_bandwidth", "ext_associativity", "ext_inclusion", "ext_stride", "ext_multiprog",
            "ext_write_policy", "ext_timing_fidelity", "ext_marginal_utility",
            "ext_cold_start", "ext_penalty_sweep", "ext_prefetch_traffic", "ext_os", "ablations",
            "ext_modern_workloads",
        }
        assert set(ALL_EXPERIMENTS) == expected

    @pytest.mark.parametrize("name", sorted(
        {"table_1_1", "table_2_1", "table_2_2", "figure_5_1", "overlap_5",
         "ext_l2_victim", "ext_bandwidth", "ext_associativity", "ext_inclusion", "ext_stride", "ext_multiprog",
         "ext_write_policy", "ext_timing_fidelity", "ext_marginal_utility",
         "ext_cold_start", "ext_penalty_sweep", "ext_prefetch_traffic", "ext_os", "ablations",
         "ext_modern_workloads"}
    ))
    def test_tables_are_tables(self, results, name):
        assert isinstance(results[name], TableResult)

    @pytest.mark.parametrize("name", sorted(
        {"figure_2_2", "figure_3_1", "figure_3_3", "figure_3_5", "figure_3_6",
         "figure_3_7", "figure_4_1", "figure_4_3", "figure_4_5", "figure_4_6",
         "figure_4_7"}
    ))
    def test_figures_are_figures(self, results, name):
        assert isinstance(results[name], FigureResult)

    def test_every_result_renders(self, results):
        for name, result in results.items():
            text = result.render()
            assert name in text
            assert len(text.splitlines()) >= 3


class TestTable11:
    def test_miss_cost_growth(self, results):
        table = results["table_1_1"]
        costs = table.column("miss (instr)")
        assert costs == sorted(costs)
        assert table.row_by_key("?")[5] == pytest.approx(140.0)

    def test_matches_paper_column(self, results):
        table = results["table_1_1"]
        for row in table.rows:
            assert row[5] == pytest.approx(row[6], rel=0.05)


class TestTable21:
    def test_all_benchmarks_plus_total(self, results):
        table = results["table_2_1"]
        assert [row[0] for row in table.rows] == BENCHES + ["total"]

    def test_ratios_match_paper(self, results):
        for row in results["table_2_1"].rows[:-1]:
            assert row[4] == pytest.approx(row[5], abs=0.01)

    def test_total_row_sums(self, results):
        table = results["table_2_1"]
        total = table.row_by_key("total")
        assert total[1] == sum(row[1] for row in table.rows[:-1])


class TestTable22:
    def test_rows_per_benchmark(self, results):
        assert [row[0] for row in results["table_2_2"].rows] == BENCHES

    def test_rates_are_rates(self, results):
        for row in results["table_2_2"].rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[3] <= 1.0


class TestFigure22:
    def test_breakdown_rows_sum_to_100(self, results):
        figure = results["figure_2_2"]
        for i in range(len(BENCHES)):
            total = sum(series.y[i] for series in figure.series)
            assert total == pytest.approx(100.0, abs=0.5)


class TestFigure31:
    def test_has_average_point(self, results):
        figure = results["figure_3_1"]
        assert figure.get("L1 D-cache").point("average") > 0

    def test_percentages_bounded(self, results):
        for series in results["figure_3_1"].series:
            assert all(0.0 <= y <= 100.0 for y in series.y)


class TestEntrySweepFigures:
    @pytest.mark.parametrize("name", ["figure_3_3", "figure_3_5"])
    def test_curves_monotone_in_entries(self, results, name):
        for series in results[name].series:
            assert all(b >= a - 1e-9 for a, b in zip(series.y, series.y[1:])), series.label

    @pytest.mark.parametrize("name", ["figure_3_3", "figure_3_5"])
    def test_zero_entries_removes_nothing(self, results, name):
        for series in results[name].series:
            assert series.y[0] == 0.0

    def test_average_series_present_for_both_sides(self, results):
        labels = results["figure_3_5"].labels
        assert "L1 I-cache average" in labels
        assert "L1 D-cache average" in labels


class TestRunLengthFigures:
    @pytest.mark.parametrize("name", ["figure_4_3", "figure_4_5"])
    def test_cumulative_curves_monotone(self, results, name):
        for series in results[name].series:
            assert all(b >= a - 1e-9 for a, b in zip(series.y, series.y[1:]))

    @pytest.mark.parametrize("name", ["figure_4_3", "figure_4_5"])
    def test_run_zero_removes_nothing(self, results, name):
        for series in results[name].series:
            assert series.y[0] == 0.0


class TestFigure41:
    def test_three_schemes(self, results):
        assert len(results["figure_4_1"].series) == 3

    def test_cumulative_distribution(self, results):
        for series in results["figure_4_1"].series:
            assert all(b >= a - 1e-9 for a, b in zip(series.y, series.y[1:]))
            assert all(0.0 <= y <= 100.0 for y in series.y)


class TestSweepFigures:
    def test_figure_3_6_x_axis(self, results):
        assert list(results["figure_3_6"].series[0].x) == [1, 2, 4, 8, 16, 32, 64, 128]

    def test_figure_3_7_x_axis(self, results):
        assert list(results["figure_3_7"].series[0].x) == [8, 16, 32, 64, 128, 256]

    def test_figure_4_6_series(self, results):
        assert len(results["figure_4_6"].series) == 4

    def test_figure_4_7_series(self, results):
        assert len(results["figure_4_7"].series) == 4


class TestFigure51:
    def test_average_row_present(self, results):
        table = results["figure_5_1"]
        assert table.rows[-1][0] == "average"

    def test_speedups_at_least_one(self, results):
        for row in results["figure_5_1"].rows[:-1]:
            assert row[3] >= 1.0

    def test_miss_ratio_below_one(self, results):
        for row in results["figure_5_1"].rows[:-1]:
            assert 0.0 <= row[4] <= 1.0


class TestAblationsAndExtensions:
    def test_ablation_rows(self, results):
        assert [row[0] for row in results["ablations"].rows] == BENCHES

    def test_overlap_percentages_bounded(self, results):
        for row in results["overlap_5"].rows:
            assert 0.0 <= row[5] <= 100.0

    def test_l2_victim_table_shape(self, results):
        table = results["ext_l2_victim"]
        assert len(table.rows) == 6
        assert len(table.headers) == 7
