"""Tests for the run-telemetry subsystem.

The contract: telemetry is disabled by default and costs (next to)
nothing when disabled — simulation results are bit-identical with and
without an active scope; when a scope is active, every simulation,
engine batch, and serial fallback executed under it is observed; run
records round-trip through JSON Lines and are schema-validated.
"""

import json
import warnings

import pytest

from repro.common.config import CacheConfig, baseline_system
from repro.common.types import IFETCH, LOAD
from repro.experiments.engine import LevelJob, TraceKey, run_jobs
from repro.experiments.runner import run_level
from repro.experiments.sweeps import batch_entry_sweeps, batch_run_sweeps
from repro.hierarchy.system import MemorySystem
from repro.specs import SystemSpec, VictimCacheSpec
from repro.telemetry import (
    Counter,
    MetricsScope,
    ParallelFallbackWarning,
    Timer,
    append_record,
    build_run_record,
    config_hash,
    read_records,
    record_fallback,
    scoped,
    validate_record,
)
from repro.telemetry import core as telemetry_core
from repro.traces.registry import build_trace
from repro.traces.trace import trace_from_pairs

SCALE = 800
CONFIG = CacheConfig(4096, 16)


@pytest.fixture(scope="module")
def trace():
    return build_trace("ccom", SCALE).materialize()


@pytest.fixture(autouse=True)
def no_leaked_scope():
    """Every test starts and ends with telemetry disabled."""
    telemetry_core.deactivate()
    yield
    assert telemetry_core.current() is None, "test leaked an active telemetry scope"
    telemetry_core.deactivate()


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter("jobs")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_timer_accumulates_across_uses(self):
        timer = Timer("t")
        for _ in range(2):
            with timer:
                pass
        assert timer.calls == 2
        assert timer.elapsed >= 0.0

    def test_scope_memoizes_counters_and_timers(self):
        scope = MetricsScope()
        assert scope.counter("a") is scope.counter("a")
        assert scope.timer("b") is scope.timer("b")
        scope.counter("a").add(3)
        assert scope.counters["a"].value == 3


class TestScopeLifecycle:
    def test_disabled_by_default(self):
        assert telemetry_core.current() is None
        assert not telemetry_core.enabled()

    def test_scoped_activates_and_deactivates(self):
        with scoped() as scope:
            assert telemetry_core.current() is scope
        assert telemetry_core.current() is None

    def test_deactivated_on_exception(self):
        with pytest.raises(RuntimeError):
            with scoped():
                raise RuntimeError("boom")
        assert telemetry_core.current() is None


class TestZeroOverheadDisabledPath:
    def test_system_results_identical_with_and_without_scope(self, trace):
        plain = MemorySystem().run(trace)
        with scoped():
            observed = MemorySystem().run(trace)
        assert plain.istats == observed.istats
        assert plain.dstats == observed.dstats
        assert plain.l2stats == observed.l2stats

    def test_disabled_run_observes_nothing(self, trace):
        scope = MetricsScope()
        MemorySystem().run(trace)  # no scope active
        assert scope.system_runs == 0
        assert scope.references == 0

    def test_record_fallback_without_scope_only_warns(self):
        with pytest.warns(ParallelFallbackWarning):
            record_fallback("unit-test", "because", stacklevel=2)
        # No scope to record into: nothing to assert beyond "did not raise".


class TestSimulationObservation:
    def test_system_run_observed(self, trace):
        with scoped() as scope:
            result = MemorySystem().run(trace)
        assert scope.system_runs == 1
        assert scope.references == result.total_references
        assert scope.l1i["accesses"] == result.istats.accesses
        assert scope.l1d["accesses"] == result.dstats.accesses
        assert scope.l2["demand_accesses"] == result.l2stats.demand_accesses
        assert scope.sim_wall_time > 0.0
        assert scope.references_per_sec > 0.0

    def test_level_run_observed(self, trace):
        with scoped() as scope:
            run = run_level(trace.stream("d"), CONFIG)
        assert scope.level_runs == 1
        assert scope.references == run.stats.accesses
        assert scope.level["accesses"] == run.stats.accesses

    def test_observations_aggregate(self, trace):
        with scoped() as scope:
            MemorySystem().run(trace)
            MemorySystem().run(trace)
        assert scope.system_runs == 2
        # Two identical runs double every counter.
        single = MemorySystem().run(trace)
        assert scope.l1i["accesses"] == 2 * single.istats.accesses


class TestEngineObservation:
    def test_run_jobs_records_batch(self, trace):
        key = TraceKey.of(trace)
        jobs = [
            LevelJob(SystemSpec.for_level(key, CONFIG, side="d")),
            LevelJob(SystemSpec.for_level(key, CONFIG, side="i")),
        ]
        with scoped() as scope:
            run_jobs(jobs, jobs=1)
        assert len(scope.job_batches) == 1
        batch = scope.job_batches[0]
        assert batch.kind == "LevelJob"
        assert batch.n_jobs == 2
        assert batch.workers == 1

    def test_run_jobs_parallel_progress_heartbeats(self, trace):
        key = TraceKey.of(trace)
        jobs = [LevelJob(SystemSpec.for_level(key, CONFIG, side=side)) for side in ("i", "d")]
        updates = []
        results = run_jobs(jobs, jobs=2, progress=updates.append, heartbeat=0.05)
        assert len(results) == 2
        assert updates, "parallel run must emit at least one progress heartbeat"
        final = updates[-1]
        assert final.done == final.total == 2
        assert "jobs done" in str(final)


class TestFallbackPropagation:
    def _toy_trace(self):
        pairs = [(int(IFETCH), 16 * i) for i in range(32)] + [
            (int(LOAD), 4096 + 16 * i) for i in range(32)
        ]
        return trace_from_pairs("toy", pairs)

    def test_batch_entry_sweeps_records_reason(self):
        with scoped() as scope:
            with pytest.warns(ParallelFallbackWarning, match="fell back to serial"):
                batch_entry_sweeps([self._toy_trace()], CONFIG, kind="miss", jobs=2)
        assert len(scope.fallbacks) == 1
        event = scope.fallbacks[0]
        assert event.component == "batch_entry_sweeps"
        assert "toy" in event.reason

    def test_batch_run_sweeps_records_reason(self):
        with scoped() as scope:
            with pytest.warns(ParallelFallbackWarning):
                batch_run_sweeps([self._toy_trace()], CONFIG, jobs=2)
        assert [e.component for e in scope.fallbacks] == ["batch_run_sweeps"]

    def test_no_fallback_when_serial_requested(self):
        with scoped() as scope:
            with warnings.catch_warnings():
                warnings.simplefilter("error", ParallelFallbackWarning)
                batch_entry_sweeps([self._toy_trace()], CONFIG, kind="miss", jobs=1)
        assert scope.fallbacks == []

    def test_no_fallback_for_registry_traces(self, trace):
        with scoped() as scope:
            with warnings.catch_warnings():
                warnings.simplefilter("error", ParallelFallbackWarning)
                batch_entry_sweeps([trace], CONFIG, kind="victim", jobs=2)
        assert scope.fallbacks == []


class TestRunRecords:
    def _record(self, scope=None):
        return build_run_record(
            scope if scope is not None else MetricsScope(),
            run="unit",
            config=baseline_system(),
            wall_time_s=1.25,
            jobs=2,
            scale=SCALE,
            seed=0,
        )

    def test_record_validates(self):
        validate_record(self._record().as_dict())

    def test_json_roundtrip(self, tmp_path, trace):
        with scoped() as scope:
            MemorySystem().run(trace)
        record = self._record(scope)
        path = str(tmp_path / "runs.jsonl")
        append_record(path, record)
        append_record(path, record)
        loaded = list(read_records(path))
        assert loaded == [record, record]
        assert loaded[0].l1i == record.l1i

    def test_mode_follows_jobs(self):
        scope = MetricsScope()
        serial = build_run_record(scope, "x", baseline_system(), 0.1, jobs=1)
        parallel = build_run_record(scope, "x", baseline_system(), 0.1, jobs=4)
        assert serial.mode == "serial"
        assert parallel.mode == "parallel"

    def test_fallbacks_reach_the_record(self):
        scope = MetricsScope()
        scope.record_fallback("sweep_grid", "toy trace")
        record = self._record(scope)
        assert record.engine["fallbacks"] == [
            {"component": "sweep_grid", "reason": "toy trace"}
        ]

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda d: d.pop("references"),
            lambda d: d.update(mode="warp"),
            lambda d: d.update(schema_version=99),
            lambda d: d.update(l1i={"accesses": "many"}),
            lambda d: d.update(references=True),
        ],
    )
    def test_validation_rejects_bad_payloads(self, mutation):
        payload = self._record().as_dict()
        mutation(payload)
        with pytest.raises(ValueError):
            validate_record(payload)

    def test_config_hash_stable_and_sensitive(self):
        assert config_hash(baseline_system()) == config_hash(baseline_system())
        assert config_hash(CacheConfig(4096, 16)) != config_hash(CacheConfig(8192, 16))

    def test_record_embeds_replayable_spec(self):
        spec = SystemSpec(trace=None, structure=VictimCacheSpec(4, policy="fifo"))
        record = build_run_record(
            MetricsScope(), "unit", baseline_system(), 0.1, spec=spec
        )
        validate_record(record.as_dict())
        assert record.config_hash == config_hash(spec)
        # The record alone suffices to rebuild the exact configuration.
        assert SystemSpec.from_dict(record.spec) == spec

    def test_spec_hash_supersedes_config(self):
        spec = SystemSpec(trace=None)
        with_spec = build_run_record(MetricsScope(), "x", baseline_system(), 0.1, spec=spec)
        without = build_run_record(MetricsScope(), "x", baseline_system(), 0.1)
        assert with_spec.config_hash == config_hash(spec)
        assert with_spec.config_hash != without.config_hash

    def test_read_records_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            list(read_records(str(path)))


class TestCliEmitMetrics:
    def test_one_record_per_run_serial(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = str(tmp_path / "metrics.jsonl")
        assert main(["table_2_1", "figure_3_3", "--scale", "300", "--emit-metrics", path]) == 0
        capsys.readouterr()
        records = list(read_records(path))
        assert [r.run for r in records] == ["table_2_1", "figure_3_3"]
        for record in records:
            validate_record(json.loads(record.to_json()))
            assert record.mode == "serial"
            assert record.scale == 300
            # Schema v2: every CLI record embeds a replayable config spec.
            assert SystemSpec.from_dict(record.spec).config == baseline_system()
        # figure_3_3 simulates; its record carries references and counters.
        assert records[1].references > 0
        assert records[1].level_runs > 0

    def test_one_record_per_run_parallel(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = str(tmp_path / "metrics.jsonl")
        assert main(
            ["table_2_1", "table_1_1", "--scale", "300", "--jobs", "2", "--emit-metrics", path]
        ) == 0
        capsys.readouterr()
        records = list(read_records(path))
        assert [r.run for r in records] == ["table_2_1", "table_1_1"]
        for record in records:
            assert record.mode == "parallel"
            assert record.jobs == 2
            assert record.engine["job_batches"], "parallel record must carry the batch stats"

    def test_no_metrics_file_without_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["table_1_1", "--scale", "300"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []
