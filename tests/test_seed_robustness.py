"""Seed robustness: the paper's claims must not be a seed-0 accident.

The synthetic workloads are calibrated with seed 0; these tests rebuild
the suite with a different seed and re-check the headline shapes, which
guards the calibration against overfitting to one random stream.
"""

import pytest

from repro.buffers.miss_cache import MissCache
from repro.buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig
from repro.experiments.runner import run_level
from repro.experiments.sweeps import victim_cache_sweep
from repro.hierarchy.system import MemorySystem
from repro.traces.registry import BENCHMARK_NAMES, build_trace

CONFIG = CacheConfig(4096, 16)
ALT_SEED = 17
SCALE = 15_000


@pytest.fixture(scope="module")
def alt_suite():
    return [build_trace(name, SCALE, seed=ALT_SEED).materialize() for name in BENCHMARK_NAMES]


class TestMissRateShapesSurviveReseeding:
    def test_numeric_codes_still_have_no_instruction_misses(self, alt_suite):
        # liver's 14 kernels cold-start ~150 code lines; at this reduced
        # test scale that is ~1% and shrinks with trace length.
        for name in ("linpack", "liver"):
            trace = next(t for t in alt_suite if t.name == name)
            result = MemorySystem().run(trace)
            assert result.imiss_rate < 0.02

    def test_data_rate_ordering_holds(self, alt_suite):
        rates = {t.name: MemorySystem().run(t).dmiss_rate for t in alt_suite}
        assert rates["liver"] > rates["linpack"] > rates["ccom"] > rates["met"]


class TestStructureShapesSurviveReseeding:
    def test_victim_beats_miss_cache(self, alt_suite):
        for trace in alt_suite:
            addresses = trace.data_addresses
            for entries in (1, 4):
                vc = run_level(addresses, CONFIG, VictimCache(entries)).removed
                mc = run_level(addresses, CONFIG, MissCache(entries)).removed
                assert vc >= mc, (trace.name, entries)

    def test_met_still_strongest_victim_cache_customer(self, alt_suite):
        removal = {}
        for trace in alt_suite:
            sweep = victim_cache_sweep(trace.data_addresses, CONFIG, max_entries=4)
            removal[trace.name] = sweep.percent_of_misses_removed(4)
        assert max(removal, key=removal.get) == "met"

    def test_stream_buffer_i_over_d_holds(self, alt_suite):
        i_pcts, d_pcts = [], []
        for trace in alt_suite:
            for side, sink in (("i", i_pcts), ("d", d_pcts)):
                stream = trace.stream(side)
                base = run_level(stream, CONFIG)
                if base.misses == 0:
                    continue
                removed = run_level(stream, CONFIG, StreamBuffer(4)).removed
                sink.append(100.0 * removed / base.misses)
        assert sum(i_pcts) / len(i_pcts) > 2 * sum(d_pcts) / len(d_pcts)

    def test_liver_multiway_jump_holds(self, alt_suite):
        liver = next(t for t in alt_suite if t.name == "liver")
        addresses = liver.data_addresses
        base = run_level(addresses, CONFIG)
        single = run_level(addresses, CONFIG, StreamBuffer(4)).removed
        multi = run_level(addresses, CONFIG, MultiWayStreamBuffer(4, 4)).removed
        assert multi > 4 * max(1, single)
        assert 100.0 * multi / base.misses > 50.0
