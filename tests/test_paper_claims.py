"""Integration tests for the paper's headline claims (DESIGN.md §4).

Each test pins one qualitative result the reproduction must preserve.
They run on the mid-size claims suite, so the numbers carry enough
weight to be stable across seeds at these tolerances.
"""

import pytest

from repro.buffers.base import CompositeAugmentation
from repro.buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig
from repro.common.stats import percent
from repro.experiments.runner import run_level
from repro.experiments.sweeps import miss_cache_sweep, victim_cache_sweep

CONFIG = CacheConfig(4096, 16)


def average(values):
    return sum(values) / len(values) if values else 0.0


@pytest.fixture(scope="module")
def data_sweeps(claims_suite):
    return {
        trace.name: {
            "mc": miss_cache_sweep(trace.data_addresses, CONFIG),
            "vc": victim_cache_sweep(trace.data_addresses, CONFIG),
        }
        for trace in claims_suite
    }


@pytest.fixture(scope="module")
def stream_removal(claims_suite):
    """Percent of misses removed by single/4-way buffers, per side."""
    out = {}
    for trace in claims_suite:
        per_trace = {}
        for side in ("i", "d"):
            stream = trace.stream(side)
            base = run_level(stream, CONFIG)
            if base.misses == 0:
                per_trace[side] = None
                continue
            single = run_level(stream, CONFIG, StreamBuffer(4))
            multi = run_level(stream, CONFIG, MultiWayStreamBuffer(4, 4))
            per_trace[side] = (
                percent(single.removed, base.misses),
                percent(multi.removed, base.misses),
            )
        out[trace.name] = per_trace
    return out


class TestSection3MissAndVictimCaching:
    def test_victim_beats_miss_cache_everywhere(self, data_sweeps):
        """§3.2: 'Victim caching is always an improvement over miss
        caching.'"""
        for name, sweeps in data_sweeps.items():
            for entries in (1, 2, 4, 8, 15):
                assert (
                    sweeps["vc"].removed(entries) >= sweeps["mc"].removed(entries)
                ), (name, entries)

    def test_one_entry_victim_caches_are_useful(self, data_sweeps):
        """§3.2: one-line victim caches help; one-line miss caches do
        essentially nothing (the requested line duplicates L1)."""
        vc1 = [s["vc"].percent_of_misses_removed(1) for s in data_sweeps.values()]
        mc1 = [s["mc"].percent_of_misses_removed(1) for s in data_sweeps.values()]
        assert average(vc1) > 5.0
        assert average(mc1) < average(vc1) / 3

    def test_two_entry_miss_cache_removes_meaningful_conflicts(self, data_sweeps):
        """§3.1: a 2-entry miss cache removes a noticeable share of data
        conflict misses (25% in the paper)."""
        shares = [
            sweeps["mc"].percent_of_conflicts_removed(2)
            for sweeps in data_sweeps.values()
            if sweeps["mc"].conflict_misses > 0
        ]
        assert average(shares) > 8.0

    def test_benefit_saturates_after_four_entries(self, data_sweeps):
        """§3.1: 'After four entries the improvement from additional
        miss cache entries is minor.'"""
        for name, sweeps in data_sweeps.items():
            four = sweeps["vc"].removed(4)
            fifteen = sweeps["vc"].removed(15)
            total = sweeps["vc"].total_misses
            if total == 0:
                continue
            assert (fifteen - four) / total < 0.25, name

    def test_met_gains_most_from_victim_caching(self, data_sweeps):
        """§3.1/Figure 3-3: met has the most removable conflicts."""
        removal = {
            name: sweeps["vc"].percent_of_misses_removed(4)
            for name, sweeps in data_sweeps.items()
        }
        assert max(removal, key=removal.get) == "met"

    def test_linpack_and_liver_benefit_least(self, data_sweeps):
        """§5: linpack benefits least from victim caching."""
        removal = {
            name: sweeps["vc"].percent_of_misses_removed(4)
            for name, sweeps in data_sweeps.items()
        }
        weakest_two = sorted(removal, key=removal.get)[:2]
        assert set(weakest_two) == {"linpack", "liver"}


class TestSection35CacheAndLineSizeTrends:
    def test_victim_cache_benefit_falls_with_cache_size(self, claims_suite):
        """Figure 3-6: smaller direct-mapped caches benefit most."""
        removals = []
        for size in (1024, 4096, 32 * 1024, 128 * 1024):
            config = CacheConfig(size, 16)
            shares = []
            for trace in claims_suite:
                sweep = victim_cache_sweep(trace.data_addresses, config, max_entries=4)
                if sweep.total_misses:
                    shares.append(sweep.percent_of_misses_removed(4))
            removals.append(average(shares))
        assert removals[0] > removals[-1]
        assert removals[1] > removals[-1]

    def test_victim_cache_benefit_rises_with_line_size(self, claims_suite):
        """Figure 3-7: longer lines mean more removable conflicts."""
        shares_by_line = []
        for line_size in (16, 64, 256):
            config = CacheConfig(4096, line_size)
            shares = []
            for trace in claims_suite:
                sweep = victim_cache_sweep(trace.data_addresses, config, max_entries=4)
                if sweep.conflict_misses:
                    shares.append(sweep.percent_of_conflicts_removed(4))
            shares_by_line.append(average(shares))
        assert shares_by_line[0] < shares_by_line[1] < shares_by_line[2]


class TestSection4StreamBuffers:
    def test_instruction_side_beats_data_side(self, stream_removal):
        """§4.2: ~72% of I-misses removed vs ~25% of D-misses (single)."""
        i_single = average(
            [v["i"][0] for v in stream_removal.values() if v["i"] is not None]
        )
        d_single = average(
            [v["d"][0] for v in stream_removal.values() if v["d"] is not None]
        )
        assert i_single > 60.0
        assert d_single < i_single / 2

    def test_multiway_roughly_doubles_data_side(self, stream_removal):
        """§4.2: 4-way removes 43% of data misses, ~2x the single buffer."""
        d_single = average(
            [v["d"][0] for v in stream_removal.values() if v["d"] is not None]
        )
        d_multi = average(
            [v["d"][1] for v in stream_removal.values() if v["d"] is not None]
        )
        assert d_multi > 1.5 * d_single

    def test_multiway_leaves_instruction_side_unchanged(self, stream_removal):
        """§4.2: instruction-side performance 'virtually unchanged'."""
        for name, v in stream_removal.items():
            if v["i"] is None:
                continue
            single, multi = v["i"]
            assert multi <= single + 10.0, name

    def test_liver_jumps_with_multiway(self, stream_removal):
        """§4.2: liver goes from 7% (single) to 60% (4-way)."""
        single, multi = stream_removal["liver"]["d"]
        assert single < 20.0
        assert multi > 50.0
        assert multi > 4 * single

    def test_linpack_streams_even_through_a_single_buffer(self, stream_removal):
        """§4.1: linpack's misses are one long sequential stream."""
        single, _ = stream_removal["linpack"]["d"]
        assert single > 40.0


class TestSection5CombinedSystem:
    def test_combined_halves_miss_rate(self, claims_suite):
        """§5: 'reduce the miss rate of the first level ... by a factor
        of two to three' — misses reaching the L2 drop by >= 2x."""
        total_base = 0
        total_improved = 0
        for trace in claims_suite:
            for side, augmentation in (
                ("i", StreamBuffer(4)),
                (
                    "d",
                    CompositeAugmentation(
                        [VictimCache(4), MultiWayStreamBuffer(4, 4)]
                    ),
                ),
            ):
                stream = trace.stream(side)
                base = run_level(stream, CONFIG)
                improved = run_level(stream, CONFIG, augmentation)
                total_base += base.stats.misses_to_next_level
                total_improved += improved.stats.misses_to_next_level
        assert total_improved * 2 < total_base

    def test_overlap_is_small_except_linpack(self, claims_suite):
        """§5: only 2.5% of VC-hitting misses also hit a stream buffer,
        except linpack where half the VC hits overlap."""
        for trace in claims_suite:
            victim = VictimCache(4)
            stream = MultiWayStreamBuffer(4, 4)
            composite = CompositeAugmentation([victim, stream])
            run = run_level(trace.data_addresses, CONFIG, composite)
            if trace.name == "linpack":
                assert percent(composite.overlap_hits, victim.hits) > 30.0
            else:
                assert percent(composite.overlap_hits, run.misses) < 12.0

    def test_linpack_victim_hits_are_rare(self, claims_suite):
        """§5: 'only 4% of linpack's cache misses hit in the victim
        cache.'"""
        linpack = next(t for t in claims_suite if t.name == "linpack")
        victim = VictimCache(4)
        run = run_level(linpack.data_addresses, CONFIG, victim)
        assert percent(victim.hits, run.misses) < 12.0
