"""PackedTrace: equivalence with the list form, trace fixes, SHM handoff."""

from __future__ import annotations

from array import array

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import AccessKind
from repro.traces.packed import (
    PackedTrace,
    attach_shared_trace,
    release_shared_segments,
    share_packed_traces,
)
from repro.traces.registry import build_trace
from repro.traces.trace import MaterializedTrace, TraceMeta

IF = int(AccessKind.IFETCH)
LD = int(AccessKind.LOAD)
ST = int(AccessKind.STORE)

PAIRS = [(IF, 0), (LD, 4096), (IF, 16), (ST, 4112), (IF, 32), (LD, 8192)]


def packed(pairs=PAIRS) -> PackedTrace:
    return PackedTrace.from_pairs(TraceMeta(name="t"), pairs)


def listed(pairs=PAIRS) -> MaterializedTrace:
    return MaterializedTrace(TraceMeta(name="t"), list(pairs))


class TestEquivalenceWithListForm:
    def test_len_iter_pairs(self):
        p, m = packed(), listed()
        assert len(p) == len(m)
        assert list(p) == list(m)
        assert p.pairs == m.pairs

    def test_split_streams(self):
        p, m = packed(), listed()
        assert p.instruction_addresses == m.instruction_addresses
        assert p.data_addresses == m.data_addresses
        assert p.stream("i") == m.stream("i")
        assert p.stream("d") == m.stream("d")

    def test_stats(self):
        p, m = packed(), listed()
        assert p.stats() == m.stats()
        assert p.stats().total_references == len(p)

    def test_unique_lines(self):
        p, m = packed(), listed()
        for side in ("i", "d"):
            assert p.unique_lines(side, 16) == m.unique_lines(side, 16)

    def test_fingerprint_matches_list_form(self):
        assert packed().fingerprint() == listed().fingerprint()

    def test_fingerprint_differs_on_content(self):
        other = [(IF, 0)] + PAIRS[1:]
        other[0] = (IF, 64)
        assert packed().fingerprint() != packed(other).fingerprint()

    def test_materialize_returns_packed(self):
        trace = build_trace("ccom", 2_000).materialize()
        assert isinstance(trace, PackedTrace)

    def test_materialize_falls_back_on_huge_addresses(self):
        from repro.traces.trace import Trace

        # 2**63 overflows array('q'); materialize must keep the list form.
        t = Trace(TraceMeta(name="huge"), lambda: [(IF, 2**63)])
        m = t.materialize()
        assert type(m) is MaterializedTrace
        assert m.pairs == [(IF, 2**63)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PackedTrace(TraceMeta(name="t"), array("b", [0]), array("q", []))


class TestTraceStatsOther:
    """Satellite: stats() must reconcile with len() for foreign kinds."""

    FOREIGN = PAIRS + [(9, 64), (9, 80)]

    def test_list_form_counts_other(self):
        stats = listed(self.FOREIGN).stats()
        assert stats.other == 2
        assert stats.total_references == len(self.FOREIGN)

    def test_packed_form_counts_other(self):
        stats = packed(self.FOREIGN).stats()
        assert stats.other == 2
        assert stats.total_references == len(self.FOREIGN)

    def test_clean_traces_have_zero_other(self):
        assert listed().stats().other == 0
        assert packed().stats().other == 0


class TestUniqueLinesValidation:
    """Satellite: non-power-of-two line sizes must raise, not miscount."""

    @pytest.mark.parametrize("bad", [0, -16, 3, 24, 100])
    @pytest.mark.parametrize("factory", [packed, listed])
    def test_rejects_bad_line_sizes(self, factory, bad):
        with pytest.raises(ConfigurationError):
            factory().unique_lines("i", bad)

    @pytest.mark.parametrize("factory", [packed, listed])
    def test_accepts_powers_of_two(self, factory):
        trace = factory()
        assert trace.unique_lines("i", 1) == len(set(trace.stream("i")))
        assert trace.unique_lines("d", 4096) >= 1


class TestPicklePayload:
    """Regression: pickling a warmed trace must not ship derived caches.

    Before ``__getstate__`` existed, a trace that had served ``.pairs``
    or the numpy stream caches pickled *all* of them — the numpy views
    serialize as full int64 copies, not views — multiplying the payload
    the packed form exists to shrink."""

    @staticmethod
    def warmed(trace: PackedTrace) -> PackedTrace:
        trace.pairs
        trace.instruction_addresses
        trace.data_addresses
        trace.stats()
        trace.fingerprint()
        try:
            trace.as_arrays()
            trace.stream_array("i")
            trace.stream_array("d")
        except ImportError:  # packed traces work without numpy
            pass
        return trace

    def test_warmed_trace_pickles_no_bigger_than_cold(self):
        import pickle

        cold = len(pickle.dumps(build_trace("liver", 2_000).materialize()))
        warm = len(pickle.dumps(self.warmed(build_trace("liver", 2_000).materialize())))
        # Identical buffers; only the (tiny) kept stats/fingerprint may
        # differ between the two payloads.
        assert warm <= cold + 512

    def test_round_trip_rebuilds_caches_read_only(self):
        import pickle

        source = self.warmed(build_trace("liver", 2_000).materialize())
        clone = pickle.loads(pickle.dumps(source))
        assert isinstance(clone, PackedTrace)
        assert list(clone) == list(source)
        assert clone.pairs == source.pairs
        assert clone.stats() == source.stats()
        assert clone.fingerprint() == source.fingerprint()
        numpy = pytest.importorskip("numpy")
        kinds, addresses = clone.as_arrays()
        assert not kinds.flags.writeable and not addresses.flags.writeable
        for side in ("i", "d"):
            stream = clone.stream_array(side)
            assert not stream.flags.writeable
            assert numpy.array_equal(stream, source.stream_array(side))


class TestSharedMemoryHandoff:
    def test_round_trip(self):
        source = build_trace("liver", 2_000).materialize()
        assert isinstance(source, PackedTrace)
        key = ("liver", 2_000, 0)
        descriptors, segments = share_packed_traces([(key, source)])
        try:
            assert descriptors[0].memo_key == key
            clone = attach_shared_trace(descriptors[0])
        finally:
            release_shared_segments(segments)
        assert len(clone) == len(source)
        assert list(clone) == list(source)
        assert clone.fingerprint() == source.fingerprint()
        assert clone.meta == source.meta

    def test_release_is_idempotent(self):
        source = packed()
        _, segments = share_packed_traces([(("t", None, 0), source)])
        release_shared_segments(segments)
        release_shared_segments(segments)  # second call must not raise

    def test_midloop_failure_unwinds_earlier_segments(self, monkeypatch):
        """Regression: an ENOSPC on the second segment must unlink the
        first — shared-memory names are system-global and outlive the
        process when leaked."""
        from multiprocessing import shared_memory

        real = shared_memory.SharedMemory
        created = []

        def flaky(*args, **kwargs):
            if kwargs.get("create"):
                if created:  # second create fails like a full /dev/shm
                    raise OSError(28, "No space left on device")
                segment = real(*args, **kwargs)
                created.append(segment.name)
                return segment
            return real(*args, **kwargs)

        monkeypatch.setattr(shared_memory, "SharedMemory", flaky)
        with pytest.raises(OSError, match="No space left"):
            share_packed_traces([(("a", None, 0), packed()), (("b", None, 0), packed())])
        assert created
        with pytest.raises(FileNotFoundError):
            real(name=created[0])  # the first segment was unlinked

    def test_unlink_happens_even_when_close_fails(self):
        """Regression: close() and unlink() fail independently; a close
        error must not leave the name registered."""
        from multiprocessing import shared_memory

        _, segments = share_packed_traces([(("t", None, 0), packed())])
        (segment,) = segments
        name = segment.name

        class CloseFails:
            def close(self):
                raise OSError("mapping already torn down")

            def unlink(self):
                segment.unlink()

        release_shared_segments([CloseFails()])
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        segment.close()  # release this process's mapping
