"""Unit and property tests for trace file I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceFormatError
from repro.traces.io import (
    load_trace,
    read_binary_trace,
    read_text_trace,
    save_trace,
    write_binary_trace,
    write_text_trace,
)

pairs_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=2**40)),
    max_size=100,
)

SAMPLE = [(0, 0x100), (1, 0xdeadbeef), (2, 0x0)]


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.din"
        assert write_text_trace(path, SAMPLE) == 3
        assert list(read_text_trace(path)) == SAMPLE

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("# comment\n\n0 100\n   \n1 2a\n")
        assert list(read_text_trace(path)) == [(0, 0x100), (1, 0x2A)]

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 100 extra\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            list(read_text_trace(path))

    def test_rejects_bad_kind(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("7 100\n")
        with pytest.raises(TraceFormatError, match="invalid access kind"):
            list(read_text_trace(path))

    def test_rejects_non_hex_address(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 zz\n")
        with pytest.raises(TraceFormatError):
            list(read_text_trace(path))

    def test_write_rejects_bad_kind(self, tmp_path):
        with pytest.raises(TraceFormatError):
            write_text_trace(tmp_path / "t.din", [(9, 0)])

    @settings(deadline=None, max_examples=25)
    @given(pairs=pairs_strategy)
    def test_roundtrip_property(self, pairs, tmp_path_factory):
        path = tmp_path_factory.mktemp("txt") / "t.din"
        write_text_trace(path, pairs)
        assert list(read_text_trace(path)) == pairs


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.trc"
        assert write_binary_trace(path, SAMPLE) == 3
        assert list(read_binary_trace(path)) == SAMPLE

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 12)
        with pytest.raises(TraceFormatError, match="magic"):
            list(read_binary_trace(path))

    def test_rejects_truncated_record(self, tmp_path):
        path = tmp_path / "t.trc"
        write_binary_trace(path, SAMPLE)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_binary_trace(path))

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.trc"
        write_binary_trace(path, [])
        assert list(read_binary_trace(path)) == []

    @settings(deadline=None, max_examples=25)
    @given(pairs=pairs_strategy)
    def test_roundtrip_property(self, pairs, tmp_path_factory):
        path = tmp_path_factory.mktemp("bin") / "t.trc"
        write_binary_trace(path, pairs)
        assert list(read_binary_trace(path)) == pairs


class TestSaveLoad:
    def test_suffix_dispatch_binary(self, tmp_path):
        path = tmp_path / "x.trc"
        save_trace(path, SAMPLE)
        assert path.read_bytes()[:8] == b"RPROTRC1"
        loaded = load_trace(path)
        assert list(loaded) == SAMPLE
        assert loaded.name == "x"

    def test_suffix_dispatch_text(self, tmp_path):
        path = tmp_path / "x.din"
        save_trace(path, SAMPLE)
        assert path.read_text().startswith("0 100")
        loaded = load_trace(path, name="custom")
        assert loaded.name == "custom"
        assert list(loaded) == SAMPLE

    def test_workload_roundtrip(self, tmp_path, small_by_name):
        """A full synthetic benchmark survives a binary save/load."""
        trace = small_by_name["yacc"]
        path = tmp_path / "yacc.trc"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert list(loaded) == list(trace)
