"""Unit and property tests for the set-associative cache.

The degenerate cases anchor it to the other two models: a 1-way
set-associative cache must behave exactly like the direct-mapped cache,
and an all-way (single-set) one exactly like the fully-associative LRU
cache.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache
from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError

lines = st.integers(min_value=0, max_value=1 << 12)


class TestConstruction:
    def test_geometry(self):
        cache = SetAssociativeCache(CacheConfig(4096, 16), ways=4)
        assert cache.num_sets == 64

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(CacheConfig(4096, 16), ways=0)

    def test_rejects_indivisible_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(CacheConfig(4096, 16), ways=3)

    def test_rejects_non_power_of_two_sets(self):
        # 256 lines / 32 ways = 8 sets (fine); 256 / 64 = 4 (fine);
        # a case yielding non-power-of-two sets needs indivisible ways,
        # already rejected; all-way is the single-set case:
        cache = SetAssociativeCache(CacheConfig(4096, 16), ways=256)
        assert cache.num_sets == 1


class TestBasicOperation:
    def test_per_set_lru(self):
        cache = SetAssociativeCache(CacheConfig(64, 16), ways=2)  # 2 sets
        cache.fill(0)   # set 0
        cache.fill(2)   # set 0
        cache.access(0)
        assert cache.fill(4) == 2  # set 0 evicts LRU (2)

    def test_other_sets_unaffected(self):
        cache = SetAssociativeCache(CacheConfig(64, 16), ways=2)
        cache.fill(1)  # set 1
        cache.fill(0)
        cache.fill(2)
        cache.fill(4)  # churn set 0
        assert cache.probe(1)

    def test_invalidate(self):
        cache = SetAssociativeCache(CacheConfig(64, 16), ways=2)
        cache.fill(3)
        assert cache.invalidate(3)
        assert not cache.invalidate(3)

    def test_resident_lines_and_clear(self):
        cache = SetAssociativeCache(CacheConfig(64, 16), ways=2)
        cache.fill(0)
        cache.fill(1)
        assert sorted(cache.resident_lines()) == [0, 1]
        cache.clear()
        assert cache.occupancy() == 0

    def test_set_contents_order(self):
        cache = SetAssociativeCache(CacheConfig(64, 16), ways=2)
        cache.fill(0)
        cache.fill(2)
        cache.access(0)
        assert cache.set_contents_lru_to_mru(0) == [2, 0]


class TestDegenerateEquivalence:
    @given(refs=st.lists(lines, max_size=300))
    def test_one_way_equals_direct_mapped(self, refs):
        config = CacheConfig(256, 16)
        sa = SetAssociativeCache(config, ways=1)
        dm = DirectMappedCache(config)
        for line in refs:
            assert sa.access_and_fill(line) == dm.access_and_fill(line)

    @given(refs=st.lists(lines, max_size=300))
    def test_all_way_equals_fully_associative(self, refs):
        config = CacheConfig(256, 16)
        sa = SetAssociativeCache(config, ways=config.num_lines)
        fa = FullyAssociativeCache(config.num_lines)
        for line in refs:
            assert sa.access_and_fill(line) == fa.access_and_fill(line)

    @given(refs=st.lists(lines, max_size=300), ways=st.sampled_from([1, 2, 4, 8]))
    def test_occupancy_bounded(self, refs, ways):
        cache = SetAssociativeCache(CacheConfig(256, 16), ways=ways)
        for line in refs:
            cache.access_and_fill(line)
        assert cache.occupancy() <= 16


class TestAssociativityMonotonicity:
    @given(refs=st.lists(lines, min_size=10, max_size=300))
    def test_more_ways_never_more_misses_on_looping_patterns(self, refs):
        """LRU inclusion: k-way misses >= 2k-way misses for same capacity?

        This is NOT true in general (Belady anomalies exist for some
        patterns with LRU across different set counts), so assert the
        weaker sanity property: the fully-associative configuration has
        no conflict misses by definition -- replaying the trace twice,
        the second pass of an all-way cache over a footprint within
        capacity misses nothing.
        """
        config = CacheConfig(256, 16)
        footprint = sorted(set(line % 16 for line in refs))
        cache = SetAssociativeCache(config, ways=config.num_lines)
        for line in footprint:
            cache.access_and_fill(line)
        for line in footprint:
            assert cache.access_and_fill(line)
