"""Unit tests for the write-policy models (§2 extension)."""

import pytest

from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.common.types import AccessKind
from repro.hierarchy.write_policy import (
    CoalescingWriteBuffer,
    WritePolicy,
    WritePolicyCache,
)

CONFIG = CacheConfig(256, 16)  # 16 lines


def make(policy, buffer_entries=4):
    return WritePolicyCache(CONFIG, policy, buffer_entries)


class TestCoalescingWriteBuffer:
    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            CoalescingWriteBuffer(0)

    def test_coalesces_same_line(self):
        buffer = CoalescingWriteBuffer(2)
        buffer.write(5)
        buffer.write(5)
        assert buffer.coalesced == 1
        assert buffer.drains == 0
        assert buffer.occupancy() == 1

    def test_overflow_drains_oldest(self):
        buffer = CoalescingWriteBuffer(2)
        for line in (1, 2, 3):
            buffer.write(line)
        assert buffer.drains == 1
        assert buffer.occupancy() == 2

    def test_flush(self):
        buffer = CoalescingWriteBuffer(4)
        buffer.write(1)
        buffer.write(2)
        buffer.flush()
        assert buffer.drains == 2
        assert buffer.occupancy() == 0


class TestWriteThrough:
    def test_store_miss_does_not_allocate(self):
        cache = make(WritePolicy.WRITE_THROUGH)
        assert not cache.access(AccessKind.STORE, 0x100)
        assert not cache.cache.probe(0x10)
        assert cache.traffic.fills == 0

    def test_load_miss_allocates(self):
        cache = make(WritePolicy.WRITE_THROUGH)
        assert not cache.access(AccessKind.LOAD, 0x100)
        assert cache.cache.probe(0x10)
        assert cache.traffic.fills == 1

    def test_every_store_enters_write_buffer(self):
        cache = make(WritePolicy.WRITE_THROUGH)
        cache.access(AccessKind.LOAD, 0x100)
        cache.access(AccessKind.STORE, 0x100)   # hit, still written through
        cache.access(AccessKind.STORE, 0x104)   # same line: coalesces
        traffic = cache.finish()
        assert traffic.buffer_drains == 1
        assert traffic.coalesced_stores == 1

    def test_rejects_ifetch(self):
        with pytest.raises(ValueError):
            make(WritePolicy.WRITE_THROUGH).access(AccessKind.IFETCH, 0)


class TestWriteBack:
    def test_store_miss_allocates_dirty(self):
        cache = make(WritePolicy.WRITE_BACK)
        cache.access(AccessKind.STORE, 0x100)
        assert cache.cache.probe(0x10)
        traffic = cache.finish()
        assert traffic.fills == 1
        assert traffic.writebacks == 1  # dirty residue at finish()

    def test_clean_eviction_costs_nothing(self):
        cache = make(WritePolicy.WRITE_BACK)
        cache.access(AccessKind.LOAD, 0)          # line 0
        cache.access(AccessKind.LOAD, 256)        # same set, evicts clean
        assert cache.traffic.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        cache = make(WritePolicy.WRITE_BACK)
        cache.access(AccessKind.STORE, 0)         # dirty line 0
        cache.access(AccessKind.LOAD, 256)        # evicts dirty victim
        assert cache.traffic.writebacks == 1

    def test_store_hit_dirties(self):
        cache = make(WritePolicy.WRITE_BACK)
        cache.access(AccessKind.LOAD, 0)
        cache.access(AccessKind.STORE, 0)
        cache.access(AccessKind.LOAD, 256)
        assert cache.traffic.writebacks == 1

    def test_no_write_buffer(self):
        assert make(WritePolicy.WRITE_BACK).write_buffer is None


class TestTrafficAccounting:
    def test_bytes_to_next_level(self):
        cache = make(WritePolicy.WRITE_BACK)
        cache.access(AccessKind.STORE, 0)
        traffic = cache.finish()
        # 1 fill + 1 residual writeback, 16B lines.
        assert traffic.bytes_to_next_level(16) == 32

    def test_miss_rate(self):
        cache = make(WritePolicy.WRITE_BACK)
        cache.access(AccessKind.LOAD, 0)
        cache.access(AccessKind.LOAD, 0)
        assert cache.traffic.miss_rate == pytest.approx(0.5)

    def test_load_store_counters(self):
        cache = make(WritePolicy.WRITE_THROUGH)
        cache.access(AccessKind.LOAD, 0)
        cache.access(AccessKind.STORE, 0)
        cache.access(AccessKind.STORE, 64)
        assert cache.traffic.loads == 1
        assert cache.traffic.stores == 2


class TestPolicyContrast:
    def test_write_through_moves_more_bytes_on_store_heavy_stream(self):
        """The §2 bandwidth argument, in miniature."""
        wt = make(WritePolicy.WRITE_THROUGH)
        wb = make(WritePolicy.WRITE_BACK)
        # Repeated stores to a small resident set.
        for i in range(200):
            address = (i % 8) * 16
            wt.access(AccessKind.STORE, address)
            wb.access(AccessKind.STORE, address)
        wt_bytes = wt.finish().bytes_to_next_level(16)
        wb_bytes = wb.finish().bytes_to_next_level(16)
        assert wt_bytes > wb_bytes
