"""Smoke tests: every example script runs end to end and tells its story.

Examples are documentation that executes; these tests run each one
in-process (patching argv where the script takes arguments, at a reduced
scale) and assert on the narrative landmarks of its output.
"""

import runpy
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py", ["met", "8000"])
        assert "baseline (no helper structures):" in out
        assert "speedup" in out

    def test_string_compare(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "string_compare.py")
        assert "2-entry miss cache" in out
        assert "1-entry victim cache" in out
        # The story: the bare cache misses on everything.
        assert "(  0.0%)" in out

    def test_matrix_streaming(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "matrix_streaming.py")
        assert "linpack" in out and "liver" in out
        assert "stream-buffer hits by distance" in out

    def test_design_space(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "design_space.py", ["6000"])
        assert "three ways to spend transistors" in out
        assert "2-way" in out

    def test_future_work(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "future_work.py")
        assert "non-unit stride" in out
        assert "multiprogramming" in out
        assert "latency tolerance" in out

    def test_custom_workload(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "custom_workload.py")
        assert "database" in out
        assert "video-decode" in out

    def test_every_example_has_a_test(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py",
            "string_compare.py",
            "matrix_streaming.py",
            "design_space.py",
            "future_work.py",
            "custom_workload.py",
        }
        assert scripts == tested
