"""Unit and property tests for repro.common.address."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.address import (
    align_down,
    align_up,
    is_power_of_two,
    line_address,
    line_base,
    line_index,
    log2_exact,
)

addresses = st.integers(min_value=0, max_value=2**48 - 1)
pow2 = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 65536])


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_zero_and_negative(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)

    def test_rejects_composites(self):
        for value in (3, 5, 6, 7, 9, 12, 100, 4095, 4097):
            assert not is_power_of_two(value)


class TestLog2Exact:
    def test_exact_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(16) == 4
        assert log2_exact(4096) == 12

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="line_size"):
            log2_exact(3, "line_size")

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_exact(0)

    @given(exp=st.integers(min_value=0, max_value=40))
    def test_roundtrip(self, exp):
        assert log2_exact(1 << exp) == exp


class TestLineAddress:
    def test_basic(self):
        assert line_address(0, 16) == 0
        assert line_address(15, 16) == 0
        assert line_address(16, 16) == 1
        assert line_address(0x1234, 16) == 0x123

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            line_address(100, 24)

    @given(addr=addresses, line=pow2)
    def test_line_base_covers_address(self, addr, line):
        la = line_address(addr, line)
        base = line_base(la, line)
        assert base <= addr < base + line

    @given(addr=addresses, line=pow2)
    def test_addresses_in_same_line_share_line_address(self, addr, line):
        base = line_base(line_address(addr, line), line)
        assert line_address(base, line) == line_address(base + line - 1, line)


class TestLineIndex:
    def test_wraps_modulo_lines(self):
        assert line_index(0, 256) == 0
        assert line_index(256, 256) == 0
        assert line_index(257, 256) == 1

    @given(la=addresses, lines=pow2)
    def test_always_in_range(self, la, lines):
        assert 0 <= line_index(la, lines) < lines


class TestAlign:
    def test_align_down(self):
        assert align_down(0x1234, 16) == 0x1230
        assert align_down(0x1230, 16) == 0x1230

    def test_align_up(self):
        assert align_up(0x1231, 16) == 0x1240
        assert align_up(0x1240, 16) == 0x1240

    @given(addr=addresses, alignment=pow2)
    def test_align_bounds(self, addr, alignment):
        down = align_down(addr, alignment)
        up = align_up(addr, alignment)
        assert down % alignment == 0
        assert up % alignment == 0
        assert down <= addr <= up
        assert up - down in (0, alignment)
