"""Unit and property tests for repro.common.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import (
    Histogram,
    RatioStat,
    average_percent_reduction,
    cumulative,
    percent,
    percent_reduction,
    safe_div,
    weighted_mean,
)


class TestSafeDiv:
    def test_normal(self):
        assert safe_div(1, 2) == 0.5

    def test_zero_denominator(self):
        assert safe_div(1, 0) == 0.0
        assert safe_div(1, 0, default=1.0) == 1.0


class TestPercent:
    def test_basic(self):
        assert percent(1, 4) == 25.0

    def test_zero_whole(self):
        assert percent(1, 0) == 0.0


class TestPercentReduction:
    def test_half(self):
        assert percent_reduction(100, 50) == 50.0

    def test_negative_when_worse(self):
        # A structure that hurts must show as hurting, not be clamped.
        assert percent_reduction(100, 150) == -50.0

    def test_zero_baseline(self):
        assert percent_reduction(0, 10) == 0.0


class TestAveragePercentReduction:
    def test_paper_metric_weights_benchmarks_equally(self):
        # One benchmark with a huge miss count halved, one tiny one
        # untouched: the paper's metric averages 50% and 0% -> 25%.
        assert average_percent_reduction([(1_000_000, 500_000), (10, 10)]) == 25.0

    def test_skips_zero_baselines(self):
        # linpack/liver instruction caches: no misses, nothing to reduce.
        assert average_percent_reduction([(0, 0), (100, 50)]) == 50.0

    def test_all_zero(self):
        assert average_percent_reduction([(0, 0)]) == 0.0


class TestCumulative:
    def test_running_sum(self):
        assert cumulative([1, 2, 3]) == [1, 3, 6]

    def test_empty(self):
        assert cumulative([]) == []

    @given(st.lists(st.integers(min_value=0, max_value=100)))
    def test_monotone_for_non_negative(self, values):
        out = cumulative(values)
        assert all(b >= a for a, b in zip(out, out[1:]))
        if values:
            assert out[-1] == sum(values)


class TestRatioStat:
    def test_record_and_rate(self):
        stat = RatioStat()
        stat.record(True)
        stat.record(False)
        stat.record(True)
        assert stat.events == 2
        assert stat.total == 3
        assert stat.rate == pytest.approx(2 / 3)
        assert stat.as_percent == pytest.approx(200 / 3)

    def test_empty_rate(self):
        assert RatioStat().rate == 0.0

    def test_merge(self):
        merged = RatioStat(1, 2).merged_with(RatioStat(3, 4))
        assert merged.events == 4 and merged.total == 6


class TestHistogram:
    def test_add_and_total(self):
        hist = Histogram()
        hist.add(3)
        hist.add(3, 2)
        hist.add(7)
        assert hist.total() == 4
        assert hist.counts == {3: 3, 7: 1}

    def test_count_at_most(self):
        hist = Histogram({0: 1, 2: 5, 9: 3})
        assert hist.count_at_most(-1) == 0
        assert hist.count_at_most(0) == 1
        assert hist.count_at_most(2) == 6
        assert hist.count_at_most(100) == 9

    def test_series_access(self):
        hist = Histogram({1: 4, 3: 2})
        assert hist.as_series([0, 1, 2, 3]) == [0, 4, 0, 2]
        assert hist.cumulative_series([0, 1, 2, 3]) == [0, 4, 4, 6]

    def test_merge(self):
        a = Histogram({1: 1})
        a.merge(Histogram({1: 2, 5: 3}))
        assert a.counts == {1: 3, 5: 3}

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=60))
    def test_cumulative_is_monotone_and_bounded(self, keys):
        hist = Histogram()
        for key in keys:
            hist.add(key)
        series = hist.cumulative_series(list(range(21)))
        assert all(b >= a for a, b in zip(series, series[1:]))
        assert series[-1] == len(keys)


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean({"a": 1.0, "b": 3.0}, {"a": 1.0, "b": 1.0}) == 2.0
        assert weighted_mean({"a": 1.0, "b": 3.0}, {"a": 3.0, "b": 1.0}) == 1.5

    def test_missing_weight_is_zero(self):
        assert weighted_mean({"a": 5.0, "b": 1.0}, {"b": 2.0}) == 1.0

    def test_no_weights(self):
        assert weighted_mean({"a": 5.0}, {}) == 0.0
