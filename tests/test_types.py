"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import (
    IFETCH,
    LOAD,
    STORE,
    Access,
    AccessKind,
    AccessOutcome,
    MissKind,
)


class TestAccessKind:
    def test_stable_encoding(self):
        # Trace files depend on these exact values.
        assert int(AccessKind.IFETCH) == 0
        assert int(AccessKind.LOAD) == 1
        assert int(AccessKind.STORE) == 2

    def test_instruction_predicate(self):
        assert IFETCH.is_instruction
        assert not LOAD.is_instruction
        assert not STORE.is_instruction

    def test_data_predicate(self):
        assert not IFETCH.is_data
        assert LOAD.is_data
        assert STORE.is_data

    def test_write_predicate(self):
        assert not IFETCH.is_write
        assert not LOAD.is_write
        assert STORE.is_write


class TestAccess:
    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            Access(LOAD, -1)

    def test_line_mapping(self):
        assert Access(LOAD, 0x1234).line(16) == 0x123

    def test_as_pair(self):
        assert Access(STORE, 0x40).as_pair() == (2, 0x40)

    def test_predicates_delegate(self):
        access = Access(IFETCH, 0)
        assert access.is_instruction and not access.is_data and not access.is_write

    def test_frozen(self):
        access = Access(LOAD, 4)
        with pytest.raises(AttributeError):
            access.address = 8


class TestAccessOutcome:
    def test_hit_is_not_a_miss(self):
        assert not AccessOutcome.HIT.is_l1_miss
        assert not AccessOutcome.HIT.is_removed_miss
        assert not AccessOutcome.HIT.goes_to_next_level

    def test_removed_misses(self):
        for outcome in (
            AccessOutcome.MISS_CACHE_HIT,
            AccessOutcome.VICTIM_HIT,
            AccessOutcome.STREAM_HIT,
        ):
            assert outcome.is_l1_miss
            assert outcome.is_removed_miss
            assert not outcome.goes_to_next_level

    def test_full_miss(self):
        assert AccessOutcome.MISS.is_l1_miss
        assert not AccessOutcome.MISS.is_removed_miss
        assert AccessOutcome.MISS.goes_to_next_level


class TestMissKind:
    def test_four_categories(self):
        # The paper's taxonomy: conflict, compulsory, capacity, coherence.
        assert len(MissKind) == 4
        assert {k.name for k in MissKind} == {
            "COMPULSORY",
            "CAPACITY",
            "CONFLICT",
            "COHERENCE",
        }


class TestPackageMetadata:
    def test_version_matches_pyproject(self):
        import pathlib
        import repro

        pyproject = pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()

    def test_py_typed_marker_shipped(self):
        import pathlib
        import repro

        assert (pathlib.Path(repro.__file__).parent / "py.typed").exists()
