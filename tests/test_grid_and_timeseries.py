"""Tests for the grid-sweep and time-series analysis tools."""

import pytest

from repro.buffers.stream_buffer import StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.experiments.grid import GridSpec, default_structures, sweep_grid
from repro.experiments.timeseries import miss_rate_series, removal_rate_series

CONFIG = CacheConfig(4096, 16)


class TestGridSpec:
    def test_default_structures_cover_the_paper(self):
        assert set(default_structures()) == {"none", "vc4", "sb1x4", "sb4x4"}

    def test_num_points(self):
        spec = GridSpec(cache_sizes_kb=[4, 8], line_sizes=[16, 32, 64])
        assert spec.num_points == 2 * 3 * 4

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError):
            GridSpec(cache_sizes_kb=[])
        with pytest.raises(ConfigurationError):
            GridSpec(structures={})


class TestSweepGrid:
    @pytest.fixture(scope="class")
    def table(self, small_suite):
        spec = GridSpec(
            cache_sizes_kb=[2, 8],
            line_sizes=[16],
            structures={"none": None, "vc2": lambda: VictimCache(2)},
        )
        return sweep_grid(small_suite[:2], spec)

    def test_row_count(self, table):
        assert len(table.rows) == 2 * 2 * 1 * 2  # traces x sizes x lines x structures

    def test_bigger_cache_never_higher_baseline_rate(self, table):
        for trace_name in {row[0] for row in table.rows}:
            rates = {
                row[1]: row[4]
                for row in table.rows
                if row[0] == trace_name and row[3] == "none"
            }
            assert rates[8] <= rates[2] + 1e-9

    def test_baseline_removes_nothing(self, table):
        for row in table.rows:
            if row[3] == "none":
                assert row[5] == 0.0

    def test_effective_rate_at_most_miss_rate(self, table):
        for row in table.rows:
            assert row[6] <= row[4] + 1e-9

    def test_instruction_side(self, small_suite):
        spec = GridSpec(structures={"sb": lambda: StreamBuffer(4)})
        table = sweep_grid(small_suite[:1], spec, side="i")
        assert len(table.rows) == 1
        assert table.rows[0][5] > 0.0

    def test_warmup_passthrough(self, small_suite):
        spec = GridSpec(structures={"none": None}, warmup=500)
        cold_spec = GridSpec(structures={"none": None})
        warm = sweep_grid(small_suite[:1], spec)
        cold = sweep_grid(small_suite[:1], cold_spec)
        assert warm.rows[0][4] <= cold.rows[0][4] * 1.2


class TestTimeSeries:
    def test_interval_count(self):
        addresses = [i * 16 for i in range(100)]
        series = miss_rate_series(addresses, CONFIG, interval=30)
        assert len(series.y) == 4  # 30+30+30+10
        assert series.x == [0, 30, 60, 90]

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            miss_rate_series([0], CONFIG, interval=0)

    def test_cold_then_warm_phases_visible(self):
        # Two passes over a cache-resident set: first interval all
        # misses, second all hits.
        addresses = [i * 16 for i in range(50)] * 2
        series = miss_rate_series(addresses, CONFIG, interval=50)
        assert series.y == [1.0, 0.0]

    def test_rates_bounded(self, small_by_name):
        addresses = small_by_name["liver"].data_addresses
        series = miss_rate_series(addresses, CONFIG, interval=400)
        assert all(0.0 <= y <= 1.0 for y in series.y)

    def test_removal_series(self):
        # Alternating conflict pair: after warmup the VC removes all.
        addresses = [0, 4096] * 50
        series = removal_rate_series(
            addresses, CONFIG, VictimCache(1), interval=20
        )
        assert series.y[-1] == 1.0

    def test_empty_trace(self):
        series = miss_rate_series([], CONFIG)
        assert series.y == []

    def test_custom_label(self):
        series = miss_rate_series([0], CONFIG, label="mine")
        assert series.label == "mine"
