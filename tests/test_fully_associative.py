"""Unit and property tests for the fully-associative cache.

The LRU variant is verified against an independent reference model
(explicit list, most recent at the end) under arbitrary access/fill
interleavings — this cache underpins the miss cache, the victim cache,
and the 3C shadow classifier, so its LRU order must be exactly right.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.caches.fully_associative import FullyAssociativeCache, ReplacementPolicy
from repro.common.errors import ConfigurationError

lines = st.integers(min_value=0, max_value=40)


class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            FullyAssociativeCache(0)

    def test_single_entry_ok(self):
        cache = FullyAssociativeCache(1)
        cache.fill(1)
        assert cache.fill(2) == 1


class TestLRUSemantics:
    def test_evicts_least_recently_used(self):
        cache = FullyAssociativeCache(2)
        cache.fill(1)
        cache.fill(2)
        cache.access(1)  # 2 becomes LRU
        assert cache.fill(3) == 2

    def test_access_refreshes(self):
        cache = FullyAssociativeCache(2)
        cache.fill(1)
        cache.fill(2)
        assert cache.access(1)
        assert cache.lru_line() == 2
        assert cache.mru_line() == 1

    def test_fill_resident_refreshes(self):
        cache = FullyAssociativeCache(2)
        cache.fill(1)
        cache.fill(2)
        assert cache.fill(1) is None
        assert cache.fill(3) == 2

    def test_probe_does_not_refresh(self):
        cache = FullyAssociativeCache(2)
        cache.fill(1)
        cache.fill(2)
        cache.probe(1)
        assert cache.fill(3) == 1

    def test_miss_access_returns_false(self):
        cache = FullyAssociativeCache(2)
        assert not cache.access(9)

    def test_depth_of(self):
        cache = FullyAssociativeCache(4)
        for line in (1, 2, 3):
            cache.fill(line)
        assert cache.depth_of(3) == 0
        assert cache.depth_of(2) == 1
        assert cache.depth_of(1) == 2
        assert cache.depth_of(99) is None

    def test_lines_lru_to_mru(self):
        cache = FullyAssociativeCache(3)
        for line in (5, 6, 7):
            cache.fill(line)
        cache.access(5)
        assert cache.lines_lru_to_mru() == [6, 7, 5]

    def test_invalidate(self):
        cache = FullyAssociativeCache(2)
        cache.fill(1)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert cache.occupancy() == 0

    def test_empty_lru_mru(self):
        cache = FullyAssociativeCache(2)
        assert cache.lru_line() is None
        assert cache.mru_line() is None


class TestFIFOSemantics:
    def test_evicts_oldest_regardless_of_access(self):
        cache = FullyAssociativeCache(2, ReplacementPolicy.FIFO)
        cache.fill(1)
        cache.fill(2)
        cache.access(1)  # FIFO ignores recency
        assert cache.fill(3) == 1

    def test_refill_does_not_reorder(self):
        cache = FullyAssociativeCache(2, ReplacementPolicy.FIFO)
        cache.fill(1)
        cache.fill(2)
        cache.fill(1)
        assert cache.fill(3) == 1


class TestRandomSemantics:
    def test_deterministic_with_seed(self):
        a = FullyAssociativeCache(2, ReplacementPolicy.RANDOM, seed=7)
        b = FullyAssociativeCache(2, ReplacementPolicy.RANDOM, seed=7)
        for cache in (a, b):
            cache.fill(1)
            cache.fill(2)
        assert a.fill(3) == b.fill(3)

    def test_victim_is_resident(self):
        cache = FullyAssociativeCache(3, ReplacementPolicy.RANDOM, seed=1)
        for line in (1, 2, 3):
            cache.fill(line)
        victim = cache.fill(4)
        assert victim in (1, 2, 3)


class _LRUReference:
    """Independent reference model: list ordered LRU -> MRU."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.order = []

    def access(self, line):
        if line in self.order:
            self.order.remove(line)
            self.order.append(line)
            return True
        return False

    def fill(self, line):
        if line in self.order:
            self.order.remove(line)
            self.order.append(line)
            return None
        victim = None
        if len(self.order) >= self.capacity:
            victim = self.order.pop(0)
        self.order.append(line)
        return victim


operations = st.lists(
    st.tuples(st.sampled_from(["access", "fill", "invalidate"]), lines),
    max_size=300,
)


class TestLRUEquivalence:
    @given(ops=operations, capacity=st.integers(min_value=1, max_value=8))
    def test_matches_reference_model(self, ops, capacity):
        cache = FullyAssociativeCache(capacity)
        reference = _LRUReference(capacity)
        for op, line in ops:
            if op == "access":
                assert cache.access(line) == reference.access(line)
            elif op == "fill":
                assert cache.fill(line) == reference.fill(line)
            else:
                was_resident = line in reference.order
                if was_resident:
                    reference.order.remove(line)
                assert cache.invalidate(line) == was_resident
            assert cache.lines_lru_to_mru() == reference.order

    @given(ops=operations, capacity=st.integers(min_value=1, max_value=8))
    def test_depth_matches_reference(self, ops, capacity):
        cache = FullyAssociativeCache(capacity)
        reference = _LRUReference(capacity)
        for op, line in ops:
            if op == "fill":
                cache.fill(line)
                reference.fill(line)
        for line in reference.order:
            expected_depth = len(reference.order) - 1 - reference.order.index(line)
            assert cache.depth_of(line) == expected_depth
