"""Stateful property tests (hypothesis RuleBasedStateMachine).

These drive a cache level through arbitrary interleaved operations and
check the paper's structural invariants after *every* step — stronger
than example-based tests because hypothesis searches for the operation
sequence that breaks them.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.buffers.miss_cache import MissCache
from repro.buffers.stream_buffer import StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig
from repro.hierarchy.level import CacheLevel

CONFIG = CacheConfig(512, 16)  # 32 sets — small enough to conflict often
lines = st.integers(min_value=0, max_value=255)


class VictimCacheMachine(RuleBasedStateMachine):
    """Exclusivity and accounting invariants of a victim-cached level."""

    def __init__(self):
        super().__init__()
        self.victim = VictimCache(3)
        self.level = CacheLevel(CONFIG, self.victim)
        self.mirror = CacheLevel(CONFIG)  # same cache, no helper

    @rule(line=lines)
    def access(self, line):
        self.level.access_line(line)
        self.mirror.access_line(line)

    @rule(line=lines)
    def access_twice(self, line):
        self.level.access_line(line)
        self.level.access_line(line)
        self.mirror.access_line(line)
        self.mirror.access_line(line)

    @invariant()
    def exclusivity(self):
        vc_lines = set(self.victim.resident_lines())
        for line in vc_lines:
            assert not self.level.cache.probe(line)

    @invariant()
    def victim_cache_never_overflows(self):
        assert self.victim.occupancy() <= self.victim.entries

    @invariant()
    def l1_state_matches_unaugmented_mirror(self):
        assert sorted(self.level.cache.resident_lines()) == sorted(
            self.mirror.cache.resident_lines()
        )

    @invariant()
    def accounting_conserved(self):
        stats = self.level.stats
        assert stats.removed_misses + stats.misses_to_next_level == stats.demand_misses
        assert stats.demand_misses == self.mirror.stats.demand_misses


class MissCacheMachine(RuleBasedStateMachine):
    """A miss cache's contents are always a subset of recent L1 fills."""

    def __init__(self):
        super().__init__()
        self.miss_cache = MissCache(3)
        self.level = CacheLevel(CONFIG, self.miss_cache)
        self.ever_missed = set()

    @rule(line=lines)
    def access(self, line):
        before_hit = self.level.cache.probe(line)
        self.level.access_line(line)
        if not before_hit:
            self.ever_missed.add(line)

    @invariant()
    def contents_are_past_misses(self):
        for line in list(self.miss_cache._store.resident_lines()):
            assert line in self.ever_missed

    @invariant()
    def bounded(self):
        assert self.miss_cache.occupancy() <= self.miss_cache.entries


class StreamBufferMachine(RuleBasedStateMachine):
    """The FIFO queue is always consecutive lines, tail = next prefetch."""

    def __init__(self):
        super().__init__()
        self.buffer = StreamBuffer(entries=4)
        self.level = CacheLevel(CONFIG, self.buffer)

    @rule(line=lines)
    def access(self, line):
        self.level.access_line(line)

    @rule(line=lines, run=st.integers(min_value=1, max_value=6))
    def sequential_run(self, line, run):
        for offset in range(run):
            self.level.access_line(line + offset)

    @invariant()
    def queue_is_consecutive(self):
        queued = self.buffer.buffered_lines()
        for a, b in zip(queued, queued[1:]):
            assert b == a + 1

    @invariant()
    def queue_bounded(self):
        assert len(self.buffer.buffered_lines()) <= self.buffer.entries

    @invariant()
    def hits_bounded_by_lookups(self):
        assert self.buffer.hits <= self.buffer.lookups


TestVictimCacheMachine = VictimCacheMachine.TestCase
TestMissCacheMachine = MissCacheMachine.TestCase
TestStreamBufferMachine = StreamBufferMachine.TestCase

for case in (TestVictimCacheMachine, TestMissCacheMachine, TestStreamBufferMachine):
    case.settings = settings(max_examples=25, stateful_step_count=60, deadline=None)
