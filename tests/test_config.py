"""Unit tests for repro.common.config."""

import dataclasses

import pytest

from repro.common.config import (
    BASELINE_L1_LINE,
    BASELINE_L1_MISS_PENALTY,
    BASELINE_L1_SIZE,
    BASELINE_L2_LINE,
    BASELINE_L2_MISS_PENALTY,
    BASELINE_L2_SIZE,
    CacheConfig,
    SystemConfig,
    TimingConfig,
    baseline_system,
)
from repro.common.errors import ConfigurationError


class TestCacheConfig:
    def test_derived_geometry(self):
        config = CacheConfig(4096, 16)
        assert config.num_lines == 256
        assert config.offset_bits == 4

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ValueError):
            CacheConfig(3000, 16)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(4096, 24)

    def test_rejects_line_bigger_than_cache(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(16, 32)

    def test_with_size(self):
        assert CacheConfig(4096, 16).with_size(8192).num_lines == 512

    def test_with_line_size(self):
        assert CacheConfig(4096, 16).with_line_size(32).num_lines == 128

    def test_frozen(self):
        config = CacheConfig(4096, 16)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.size_bytes = 8192

    def test_single_line_cache_allowed(self):
        assert CacheConfig(16, 16).num_lines == 1


class TestTimingConfig:
    def test_paper_defaults(self):
        timing = TimingConfig()
        assert timing.l1_miss_penalty == 24
        assert timing.l2_miss_penalty == 320
        assert timing.removed_miss_penalty == 1
        assert timing.l2_issue_interval == 4
        assert timing.l2_fill_latency == 12

    def test_rejects_negative_penalty(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(l1_miss_penalty=-1)

    def test_rejects_zero_issue_interval(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(l2_issue_interval=0)

    def test_rejects_zero_fill_latency(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(l2_fill_latency=0)


class TestSystemConfig:
    def test_baseline_matches_paper(self):
        system = baseline_system()
        assert system.icache == CacheConfig(BASELINE_L1_SIZE, BASELINE_L1_LINE)
        assert system.dcache == CacheConfig(4096, 16)
        assert system.l2 == CacheConfig(BASELINE_L2_SIZE, BASELINE_L2_LINE)
        assert system.l2.size_bytes == 1024 * 1024
        assert system.l2.line_size == 128
        assert BASELINE_L1_MISS_PENALTY == 24
        assert BASELINE_L2_MISS_PENALTY == 320

    def test_l2_line_must_cover_l1_line(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(l2=CacheConfig(1024 * 1024, 8))

    def test_variants_via_replace(self):
        system = dataclasses.replace(
            baseline_system(), dcache=CacheConfig(8192, 16)
        )
        assert system.dcache.num_lines == 512
        assert system.icache.num_lines == 256
