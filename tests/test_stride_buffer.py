"""Unit tests for the stride-detecting stream buffers (§5 extension)."""

import pytest

from repro.buffers.stream_buffer import StreamBuffer
from repro.buffers.stride import MultiWayStrideBuffer, StrideStreamBuffer
from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.common.types import AccessOutcome
from repro.hierarchy.level import CacheLevel


class TestConstruction:
    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            StrideStreamBuffer(entries=0)

    def test_rejects_bad_stride_window(self):
        with pytest.raises(ConfigurationError):
            StrideStreamBuffer(min_stride=0)
        with pytest.raises(ConfigurationError):
            StrideStreamBuffer(min_stride=8, max_stride=4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            MultiWayStrideBuffer(ways=0)


class TestStrideDetection:
    def test_two_misses_fix_the_stride(self):
        sb = StrideStreamBuffer(entries=4)
        sb.lookup_on_miss(100, 0)
        assert sb.stride is None
        sb.lookup_on_miss(150, 1)
        assert sb.stride == 50
        assert sb.buffered_lines() == [200, 250, 300, 350]

    def test_unit_stride_detected(self):
        sb = StrideStreamBuffer(entries=4)
        sb.lookup_on_miss(10, 0)
        sb.lookup_on_miss(11, 1)
        assert sb.stride == 1
        assert sb.buffered_lines() == [12, 13, 14, 15]

    def test_negative_stride(self):
        sb = StrideStreamBuffer(entries=4)
        sb.lookup_on_miss(1000, 0)
        sb.lookup_on_miss(990, 1)
        assert sb.stride == -10
        assert sb.buffered_lines() == [980, 970, 960, 950]

    def test_negative_stride_stops_at_zero(self):
        sb = StrideStreamBuffer(entries=4)
        sb.lookup_on_miss(20, 0)
        sb.lookup_on_miss(10, 1)
        assert sb.buffered_lines() == [0]

    def test_too_far_apart_does_not_pair(self):
        sb = StrideStreamBuffer(entries=4, max_stride=64)
        sb.lookup_on_miss(0, 0)
        sb.lookup_on_miss(1000, 1)
        assert sb.stride is None
        assert sb.buffered_lines() == []

    def test_hit_consumes_and_tops_up(self):
        sb = StrideStreamBuffer(entries=4)
        sb.lookup_on_miss(0, 0)
        sb.lookup_on_miss(50, 1)
        result = sb.lookup_on_miss(100, 2)
        assert result.satisfied
        assert result.outcome is AccessOutcome.STREAM_HIT
        assert sb.buffered_lines() == [150, 200, 250, 300]

    def test_same_line_re_miss_re_arms_active_stream(self):
        """A conflict re-miss on the stream's own line must not tear
        the stream down (the met regression)."""
        sb = StrideStreamBuffer(entries=4)
        sb.lookup_on_miss(0, 0)
        sb.lookup_on_miss(1, 1)        # stride 1, queue 2..5
        sb.lookup_on_miss(1, 2)        # same-line re-miss
        assert sb.stride == 1
        assert sb.buffered_lines() == [2, 3, 4, 5]

    def test_counters_and_reset(self):
        sb = StrideStreamBuffer(entries=4, track_run_offsets=True)
        sb.lookup_on_miss(0, 0)
        sb.lookup_on_miss(5, 1)
        sb.lookup_on_miss(10, 2)
        assert sb.hits == 1 and sb.lookups == 3 and sb.allocations == 1
        sb.reset()
        assert sb.hits == 0 and sb.stride is None
        assert sb.run_offsets.total() == 0


class TestSequentialEquivalence:
    def test_matches_sequential_buffer_on_unit_stride_streams(self, l1_config):
        """On a pure sequential stream the stride buffer loses only the
        second miss (its detector needs two misses, the sequential
        buffer one)."""
        lines = list(range(7000, 7200))
        seq_level = CacheLevel(l1_config, StreamBuffer(entries=4))
        stride_level = CacheLevel(l1_config, StrideStreamBuffer(entries=4))
        for line in lines:
            seq_level.access_line(line)
            stride_level.access_line(line)
        assert seq_level.stats.removed_misses == 199
        assert stride_level.stats.removed_misses == 198

    def test_near_noop_on_paper_suite(self, small_by_name):
        """The stride buffer must not collapse on ordinary workloads."""
        config = CacheConfig(4096, 16)
        addresses = small_by_name["linpack"].data_addresses
        seq = CacheLevel(config, StreamBuffer(4))
        stride = CacheLevel(config, StrideStreamBuffer(4))
        for address in addresses:
            seq.access(address)
            stride.access(address)
        assert stride.stats.removed_misses > 0.7 * seq.stats.removed_misses


class TestNonUnitStride:
    COLUMN_STRIDE = 64  # lines between consecutive accesses

    def _column_misses(self, n=120):
        return [i * self.COLUMN_STRIDE for i in range(n)]

    def test_sequential_buffer_useless_on_column_sweep(self, l1_config):
        level = CacheLevel(l1_config, StreamBuffer(entries=4))
        for line in self._column_misses():
            level.access_line(line)
        assert level.stats.removed_misses == 0

    def test_stride_buffer_recovers_column_sweep(self, l1_config):
        level = CacheLevel(l1_config, StrideStreamBuffer(entries=4))
        for line in self._column_misses():
            level.access_line(line)
        # All but the two detection misses are removed.
        assert level.stats.removed_misses == 118

    def test_multiway_follows_interleaved_strided_streams(self):
        streams = [
            [base + i * stride for i in range(60)]
            for base, stride in ((0, 64), (100_000, 50), (200_000, 3))
        ]
        interleaved = [line for group in zip(*streams) for line in group]
        multi = MultiWayStrideBuffer(ways=4, entries=4)
        hits = sum(
            1 for line in interleaved if multi.lookup_on_miss(line, 0).satisfied
        )
        # Each stream costs two detection misses; everything else hits.
        assert hits >= len(interleaved) - 3 * 2 - 4


class TestMultiWayBookkeeping:
    def test_one_way_equals_single(self, l1_config):
        import random

        rng = random.Random(9)
        lines = [rng.randrange(4096) for _ in range(1500)]
        single = CacheLevel(l1_config, StrideStreamBuffer(4))
        multi = CacheLevel(l1_config, MultiWayStrideBuffer(ways=1, entries=4))
        for line in lines:
            single.access_line(line)
            multi.access_line(line)
        assert single.stats.outcomes == multi.stats.outcomes

    def test_reset(self):
        multi = MultiWayStrideBuffer(ways=2, entries=2)
        multi.lookup_on_miss(0, 0)
        multi.lookup_on_miss(1, 1)
        multi.reset()
        assert multi.hits == 0
        assert all(b.stride is None for b in multi.way_buffers())

    def test_prefetch_counter_aggregates(self):
        multi = MultiWayStrideBuffer(ways=2, entries=3)
        multi.lookup_on_miss(0, 0)
        multi.lookup_on_miss(1, 1)
        assert multi.prefetches_issued == 3

    def test_fetch_sink_receives_strided_lines(self):
        fetched = []
        sb = StrideStreamBuffer(entries=3, fetch_sink=fetched.append)
        sb.lookup_on_miss(0, 0)
        sb.lookup_on_miss(10, 1)
        assert fetched == [20, 30, 40]


class TestStrideProperties:
    """Hypothesis checks on arbitrary miss streams."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    lines = st.integers(min_value=0, max_value=4096)

    @settings(deadline=None, max_examples=40)
    @given(refs=st.lists(lines, max_size=400))
    def test_never_crashes_and_counters_consistent(self, refs):
        sb = StrideStreamBuffer(entries=4)
        hits = 0
        for line in refs:
            if sb.lookup_on_miss(line, 0).satisfied:
                hits += 1
        assert sb.hits == hits
        assert sb.lookups == len(refs)
        assert sb.hits <= sb.lookups

    @settings(deadline=None, max_examples=40)
    @given(refs=st.lists(lines, max_size=400))
    def test_l1_state_unchanged_behind_level(self, refs):
        config = CacheConfig(1024, 16)
        plain = CacheLevel(config)
        with_stride = CacheLevel(config, StrideStreamBuffer(4))
        for line in refs:
            plain.access_line(line)
            with_stride.access_line(line)
        assert plain.stats.demand_misses == with_stride.stats.demand_misses
        assert sorted(plain.cache.resident_lines()) == sorted(
            with_stride.cache.resident_lines()
        )

    @settings(deadline=None, max_examples=40)
    @given(refs=st.lists(lines, max_size=300), ways=st.integers(min_value=1, max_value=4))
    def test_multiway_counters_consistent(self, refs, ways):
        multi = MultiWayStrideBuffer(ways=ways, entries=3)
        for line in refs:
            multi.lookup_on_miss(line, 0)
        assert multi.hits <= multi.lookups == len(refs)

    @settings(deadline=None, max_examples=30)
    @given(
        base=st.integers(min_value=0, max_value=10_000),
        stride=st.integers(min_value=1, max_value=200),
        count=st.integers(min_value=3, max_value=120),
    )
    def test_constant_stride_stream_costs_two_detection_misses(
        self, base, stride, count
    ):
        sb = StrideStreamBuffer(entries=4, max_stride=256)
        hits = 0
        for i in range(count):
            if sb.lookup_on_miss(base + i * stride, 0).satisfied:
                hits += 1
        assert hits == count - 2
