"""Property tests: single-pass sweeps == independent per-size simulation.

The experiments exploit two facts (DESIGN.md §5): the L1's evolution is
independent of its augmentation, and LRU structures obey the stack
property.  These tests verify the resulting shortcut — one run with a
big structure plus a depth histogram — against brute-force per-size
simulation, on both random streams and the real synthetic workloads.
"""

import warnings

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.miss_cache import MissCache
from repro.buffers.stream_buffer import StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig
from repro.experiments.runner import run_level
from repro.experiments.sweeps import (
    miss_cache_sweep,
    stream_buffer_run_sweep,
    victim_cache_sweep,
)
from repro.telemetry.core import ParallelFallbackWarning

lines = st.integers(min_value=0, max_value=2**14)
CONFIG = CacheConfig(1024, 16)  # 64 sets: conflicts are easy to provoke


def brute_force_removed(byte_addresses, config, make_structure, entries):
    run = run_level(byte_addresses, config, make_structure(entries))
    return run.removed


class TestEntrySweepEquivalence:
    @settings(deadline=None, max_examples=20)
    @given(refs=st.lists(lines, max_size=400))
    def test_victim_cache_sweep_matches_brute_force(self, refs):
        addresses = [line * 16 for line in refs]
        sweep = victim_cache_sweep(addresses, CONFIG, max_entries=6)
        for entries in (1, 2, 3, 6):
            assert sweep.removed(entries) == brute_force_removed(
                addresses, CONFIG, VictimCache, entries
            )

    @settings(deadline=None, max_examples=20)
    @given(refs=st.lists(lines, max_size=400))
    def test_miss_cache_sweep_matches_brute_force(self, refs):
        addresses = [line * 16 for line in refs]
        sweep = miss_cache_sweep(addresses, CONFIG, max_entries=6)
        for entries in (1, 2, 4, 6):
            assert sweep.removed(entries) == brute_force_removed(
                addresses, CONFIG, MissCache, entries
            )

    @settings(deadline=None, max_examples=20)
    @given(refs=st.lists(lines, max_size=400))
    def test_sweep_baseline_counts_match_plain_run(self, refs):
        addresses = [line * 16 for line in refs]
        sweep = victim_cache_sweep(addresses, CONFIG, max_entries=4)
        baseline = run_level(addresses, CONFIG, classify=True)
        assert sweep.total_misses == baseline.misses
        assert sweep.conflict_misses == baseline.conflicts

    @settings(deadline=None, max_examples=20)
    @given(refs=st.lists(lines, max_size=400))
    def test_sweep_is_monotone_in_entries(self, refs):
        addresses = [line * 16 for line in refs]
        sweep = victim_cache_sweep(addresses, CONFIG, max_entries=8)
        assert sweep.hits_by_entries == sorted(sweep.hits_by_entries)
        assert sweep.hits_by_entries[0] == 0

    def test_workload_sweep_matches_brute_force(self, small_by_name):
        config = CacheConfig(4096, 16)
        addresses = small_by_name["met"].data_addresses
        sweep = victim_cache_sweep(addresses, config, max_entries=5)
        for entries in (1, 3, 5):
            assert sweep.removed(entries) == brute_force_removed(
                addresses, config, VictimCache, entries
            )


class TestRunLengthSweep:
    def test_cumulative_and_monotone(self, small_by_name):
        config = CacheConfig(4096, 16)
        sweep = stream_buffer_run_sweep(
            small_by_name["linpack"].data_addresses, config, ways=1
        )
        assert sweep.removed_by_run[0] == 0
        assert sweep.removed_by_run == sorted(sweep.removed_by_run)

    def test_total_removed_matches_live_run(self, small_by_name):
        """At the largest run length the sweep's cumulative count equals
        the total hits of an unbounded buffer whose offsets fit."""
        config = CacheConfig(4096, 16)
        addresses = small_by_name["linpack"].data_addresses
        buffer = StreamBuffer(entries=4, track_run_offsets=True)
        live = run_level(addresses, config, buffer)
        sweep = stream_buffer_run_sweep(addresses, config, ways=1, max_run=10_000)
        assert sweep.removed_by_run[-1] == live.removed

    def test_percent_removed_bounds(self, small_by_name):
        config = CacheConfig(4096, 16)
        sweep = stream_buffer_run_sweep(
            small_by_name["liver"].data_addresses, config, ways=4
        )
        for k in range(len(sweep.removed_by_run)):
            assert 0.0 <= sweep.percent_removed(k) <= 100.0

    def test_empty_stream(self):
        sweep = stream_buffer_run_sweep([], CONFIG, ways=1)
        assert sweep.total_misses == 0
        assert sweep.percent_removed(5) == 0.0


class TestSpecSweepParallelEquivalence:
    """Non-default structure options fan out over worker processes with
    zero fallbacks.  Under the old string-code scheme any structure away
    from the paper's defaults silently dropped to the serial path; with
    declarative specs the same sweep runs under ``jobs=4`` and is
    row-for-row identical to the serial result."""

    def _grid_spec(self):
        from repro.experiments.grid import GridSpec
        from repro.specs import StrideBufferSpec, StreamBufferSpec, VictimCacheSpec

        return GridSpec(
            cache_sizes_kb=[4, 8],
            line_sizes=[16],
            structures={
                "vc4-fifo": VictimCacheSpec(4, policy="fifo"),
                "vc4-noswap": VictimCacheSpec(4, swap_on_hit=False),
                "sb6-run8": StreamBufferSpec(entries=6, max_run=8),
                "stride2x4": StrideBufferSpec(entries=4, max_stride=64, min_stride=2),
            },
        )

    def test_parallel_rows_identical_to_serial_with_zero_fallbacks(self, small_suite):
        from repro.experiments.grid import sweep_grid

        traces = small_suite[:3]
        spec = self._grid_spec()
        serial = sweep_grid(traces, spec, side="d", jobs=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ParallelFallbackWarning)
            parallel = sweep_grid(traces, spec, side="d", jobs=4)
        assert parallel.rows == serial.rows
        assert len(parallel.rows) == len(traces) * spec.num_points

    def test_batch_entry_sweeps_parallel_identical_to_serial(self, small_suite):
        from repro.experiments.sweeps import batch_entry_sweeps

        traces = small_suite[:2]
        serial = batch_entry_sweeps(traces, CacheConfig(4096, 16), kind="victim", jobs=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ParallelFallbackWarning)
            parallel = batch_entry_sweeps(
                traces, CacheConfig(4096, 16), kind="victim", jobs=4
            )
        assert [s.hits_by_entries for s in parallel] == [
            s.hits_by_entries for s in serial
        ]


class TestCappedRunBuffers:
    """Figures 4-3/4-5 use the paper's cumulative-histogram reading of
    one unbounded run; a buffer with a hard ``max_run`` cap is a
    different machine (it re-allocates and restarts its run counter), so
    the two are not comparable point by point.  What must hold: capped
    removal is monotone in the cap and converges to the unbounded
    buffer's removal."""

    def test_capped_removal_monotone_and_convergent(self, small_by_name):
        config = CacheConfig(4096, 16)
        addresses = small_by_name["linpack"].data_addresses
        removed = []
        for cap in (0, 1, 4, 16):
            run = run_level(addresses, config, StreamBuffer(entries=4, max_run=cap))
            removed.append(run.removed)
        assert removed == sorted(removed)
        assert removed[0] == 0
        unbounded = run_level(addresses, config, StreamBuffer(entries=4))
        huge_cap = run_level(
            addresses, config, StreamBuffer(entries=4, max_run=10**9)
        )
        assert huge_cap.removed == unbounded.removed
