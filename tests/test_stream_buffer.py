"""Unit tests for the single sequential stream buffer (paper §4.1)."""

import pytest

from repro.buffers.stream_buffer import StreamBuffer
from repro.common.errors import ConfigurationError
from repro.common.types import AccessOutcome
from repro.hierarchy.level import CacheLevel


class TestConstruction:
    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            StreamBuffer(entries=0)

    def test_rejects_negative_max_run(self):
        with pytest.raises(ConfigurationError):
            StreamBuffer(max_run=-1)


class TestAllocation:
    def test_allocates_after_miss_target(self):
        sb = StreamBuffer(entries=4)
        assert not sb.lookup_on_miss(100, 0).satisfied
        # Lines *after* the miss go in the buffer, not the missed line.
        assert sb.buffered_lines() == [101, 102, 103, 104]

    def test_sequential_hit_consumes_head_and_tops_up(self):
        sb = StreamBuffer(entries=4)
        sb.lookup_on_miss(100, 0)
        result = sb.lookup_on_miss(101, 1)
        assert result.satisfied
        assert result.outcome is AccessOutcome.STREAM_HIT
        assert sb.buffered_lines() == [102, 103, 104, 105]

    def test_non_sequential_miss_flushes(self):
        sb = StreamBuffer(entries=4)
        sb.lookup_on_miss(100, 0)
        assert not sb.lookup_on_miss(500, 1).satisfied
        assert sb.buffered_lines() == [501, 502, 503, 504]

    def test_head_only_comparator_skips_nothing(self):
        """§4.1: a line further down the queue does NOT hit; the buffer
        is flushed and restarted even though 103 was resident."""
        sb = StreamBuffer(entries=4)
        sb.lookup_on_miss(100, 0)
        assert not sb.lookup_on_miss(103, 1).satisfied
        assert sb.buffered_lines() == [104, 105, 106, 107]

    def test_full_comparator_variant_skips_ahead(self):
        sb = StreamBuffer(entries=4, head_only=False)
        sb.lookup_on_miss(100, 0)
        result = sb.lookup_on_miss(103, 1)
        assert result.satisfied
        # Entries before the match are discarded; the queue refills.
        assert sb.buffered_lines() == [104, 105, 106, 107]

    def test_counters(self):
        sb = StreamBuffer(entries=4)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(101, 1)
        sb.lookup_on_miss(102, 2)
        assert sb.lookups == 3
        assert sb.hits == 2
        assert sb.allocations == 1

    def test_reset(self):
        sb = StreamBuffer(entries=4, track_run_offsets=True)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(101, 1)
        sb.reset()
        assert sb.hits == 0 and sb.lookups == 0
        assert sb.buffered_lines() == []
        assert sb.run_offsets.total() == 0


class TestMaxRun:
    def test_run_limit_stops_prefetching(self):
        sb = StreamBuffer(entries=4, max_run=2)
        sb.lookup_on_miss(100, 0)
        assert sb.buffered_lines() == [101, 102]
        assert sb.lookup_on_miss(101, 1).satisfied
        assert sb.lookup_on_miss(102, 2).satisfied
        # Run exhausted: the next sequential miss re-allocates.
        assert not sb.lookup_on_miss(103, 3).satisfied
        assert sb.buffered_lines() == [104, 105]

    def test_zero_run_never_hits(self):
        sb = StreamBuffer(entries=4, max_run=0)
        sb.lookup_on_miss(100, 0)
        assert sb.buffered_lines() == []
        assert not sb.lookup_on_miss(101, 1).satisfied


class TestRunOffsets:
    def test_offsets_recorded_from_allocating_miss(self):
        sb = StreamBuffer(entries=4, track_run_offsets=True)
        sb.lookup_on_miss(100, 0)
        for i, line in enumerate((101, 102, 103, 104, 105), start=1):
            assert sb.lookup_on_miss(line, i).satisfied
        assert sb.run_offsets.counts == {1: 1, 2: 1, 3: 1, 4: 1, 5: 1}

    def test_offsets_reset_on_reallocation(self):
        sb = StreamBuffer(entries=4, track_run_offsets=True)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(101, 1)
        sb.lookup_on_miss(900, 2)  # flush
        sb.lookup_on_miss(901, 3)
        assert sb.run_offsets.counts == {1: 2}


class TestAvailabilityTiming:
    def test_not_ready_head_stalls(self):
        sb = StreamBuffer(
            entries=4, model_availability=True, fill_latency=12, issue_interval=4
        )
        sb.lookup_on_miss(100, now=0)
        # First prefetch issues at now+4, ready at now+16.
        result = sb.lookup_on_miss(101, now=5)
        assert result.satisfied
        assert result.stall_cycles == 11
        assert sb.stall_cycles_total == 11

    def test_ready_head_has_no_stall(self):
        sb = StreamBuffer(
            entries=4, model_availability=True, fill_latency=12, issue_interval=4
        )
        sb.lookup_on_miss(100, now=0)
        result = sb.lookup_on_miss(101, now=50)
        assert result.satisfied
        assert result.stall_cycles == 0

    def test_pipelined_issue_spacing(self):
        sb = StreamBuffer(
            entries=4, model_availability=True, fill_latency=12, issue_interval=4
        )
        sb.lookup_on_miss(100, now=0)
        # Prefetches issue at 4, 8, 12, 16 -> ready at 16, 20, 24, 28.
        readiness = [ready for _, ready in sb._queue]
        assert readiness == [16, 20, 24, 28]

    def test_no_availability_means_always_ready(self):
        sb = StreamBuffer(entries=4)
        sb.lookup_on_miss(100, 0)
        assert sb.lookup_on_miss(101, 0).stall_cycles == 0


class TestPureSequentialStream:
    def test_removes_all_misses_after_the_first(self, l1_config):
        """§4.1: sequential instruction execution never stalls long."""
        level = CacheLevel(l1_config, StreamBuffer(entries=4))
        for line in range(5000, 5200):
            level.access_line(line)
        stats = level.stats
        assert stats.demand_misses == 200
        assert stats.outcomes[AccessOutcome.STREAM_HIT] == 199
        assert stats.misses_to_next_level == 1

    def test_fetch_sink_sees_every_prefetch(self):
        fetched = []
        sb = StreamBuffer(entries=4, fetch_sink=fetched.append)
        sb.lookup_on_miss(100, 0)
        assert fetched == [101, 102, 103, 104]
        sb.lookup_on_miss(101, 1)
        assert fetched[-1] == 105


class TestAllocationFilter:
    def test_first_miss_only_arms(self):
        sb = StreamBuffer(entries=4, allocation_filter=True)
        sb.lookup_on_miss(100, 0)
        assert sb.buffered_lines() == []
        assert sb.prefetches_issued == 0

    def test_second_sequential_miss_allocates(self):
        sb = StreamBuffer(entries=4, allocation_filter=True)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(101, 1)
        assert sb.buffered_lines() == [102, 103, 104, 105]

    def test_non_sequential_second_miss_rearms(self):
        sb = StreamBuffer(entries=4, allocation_filter=True)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(500, 1)    # unrelated: re-arm at 501
        assert sb.buffered_lines() == []
        sb.lookup_on_miss(501, 2)    # confirms the new stream
        assert sb.buffered_lines() == [502, 503, 504, 505]

    def test_sequential_stream_costs_two_misses(self, l1_config):
        level = CacheLevel(l1_config, StreamBuffer(entries=4, allocation_filter=True))
        for line in range(9000, 9100):
            level.access_line(line)
        assert level.stats.outcomes[AccessOutcome.STREAM_HIT] == 98

    def test_filter_saves_traffic_on_random_misses(self, l1_config):
        import random

        rng = random.Random(4)
        lines = [rng.randrange(1 << 16) for _ in range(2000)]
        plain = StreamBuffer(4)
        filtered = StreamBuffer(4, allocation_filter=True)
        for buffer in (plain, filtered):
            level = CacheLevel(l1_config, buffer)
            for line in lines:
                level.access_line(line)
        assert filtered.prefetches_issued < plain.prefetches_issued / 10

    def test_multiway_filter_routes_to_armed_way(self):
        from repro.buffers.stream_buffer import MultiWayStreamBuffer

        multi = MultiWayStreamBuffer(ways=4, entries=4, allocation_filter=True)
        multi.lookup_on_miss(100, 0)   # arms some way at 101
        multi.lookup_on_miss(900, 1)   # arms another at 901
        multi.lookup_on_miss(101, 2)   # must reach the 101-armed way
        assert multi.lookup_on_miss(102, 3).satisfied

    def test_reset_clears_armed_state(self):
        sb = StreamBuffer(entries=4, allocation_filter=True)
        sb.lookup_on_miss(100, 0)
        sb.reset()
        sb.lookup_on_miss(101, 1)    # would have confirmed; now re-arms
        assert sb.buffered_lines() == []


class TestAllocationFilterInteractions:
    def test_filter_with_max_run(self):
        sb = StreamBuffer(entries=4, max_run=2, allocation_filter=True)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(101, 1)     # confirm; run capped at 2
        assert sb.buffered_lines() == [102, 103]

    def test_filter_with_full_comparator(self):
        sb = StreamBuffer(entries=4, head_only=False, allocation_filter=True)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(101, 1)     # queue 102..105
        assert sb.lookup_on_miss(104, 2).satisfied  # skip-ahead still works

    def test_filter_with_availability(self):
        sb = StreamBuffer(
            entries=4,
            allocation_filter=True,
            model_availability=True,
            fill_latency=12,
            issue_interval=4,
        )
        sb.lookup_on_miss(100, now=0)
        sb.lookup_on_miss(101, now=4)     # confirm at t=4
        result = sb.lookup_on_miss(102, now=5)
        assert result.satisfied
        assert result.stall_cycles > 0    # fill launched at t=8, ready t=20

    def test_filter_run_offsets_count_from_confirming_miss(self):
        sb = StreamBuffer(entries=4, allocation_filter=True, track_run_offsets=True)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(101, 1)
        sb.lookup_on_miss(102, 2)
        assert sb.run_offsets.counts == {1: 1}

    def test_buffer_hit_then_unrelated_miss_rearms(self):
        sb = StreamBuffer(entries=4, allocation_filter=True)
        sb.lookup_on_miss(100, 0)
        sb.lookup_on_miss(101, 1)
        assert sb.lookup_on_miss(102, 2).satisfied
        sb.lookup_on_miss(900, 3)          # arm only
        assert sb.buffered_lines() == []
        assert not sb.lookup_on_miss(103, 4).satisfied  # old stream gone
