"""Unit tests for the synthetic reference-pattern building blocks."""

import itertools
import random

import pytest

from repro.common.types import IFETCH, STORE
from repro.traces.patterns import (
    Phase,
    ProcedureFabric,
    alternate_code,
    bursty,
    conflicting_streams,
    interleave_phase,
    interleaved_streams,
    loop_calling_helper,
    loop_code,
    mix,
    pointer_chase,
    random_working_set,
    run_phases,
    stack_traffic,
    straight_code,
    stride_stream,
    string_compare,
)


def take(iterator, n):
    return list(itertools.islice(iter(iterator), n))


class TestCodePatterns:
    def test_straight_code(self):
        assert list(straight_code(100, 3)) == [100, 104, 108]

    def test_straight_code_instr_size(self):
        assert list(straight_code(0, 3, instr_size=8)) == [0, 8, 16]

    def test_loop_code_cycles(self):
        out = take(loop_code(0, 4), 10)
        assert out == [0, 4, 8, 12, 0, 4, 8, 12, 0, 4]

    def test_loop_calling_helper_shape(self):
        gen = loop_calling_helper(0, 10_000, loop_instrs=4, helper_instrs=2)
        one_iteration = take(gen, 6)
        # first half (2), helper (2), second half (2)
        assert one_iteration == [0, 4, 10_000, 10_004, 8, 12]

    def test_alternate_code_draws_from_both(self):
        rng = random.Random(0)
        a = itertools.repeat(1)
        b = itertools.repeat(2)
        out = take(alternate_code(rng, a, b, 5, 5), 200)
        assert 1 in out and 2 in out


class TestProcedureFabric:
    def test_deterministic_for_seed(self):
        streams = []
        for _ in range(2):
            rng = random.Random(42)
            fabric = ProcedureFabric(rng, num_procedures=16, code_span=16 * 1024)
            streams.append(take(fabric, 500))
        assert streams[0] == streams[1]

    def test_addresses_aligned_to_instr_size(self):
        rng = random.Random(1)
        fabric = ProcedureFabric(rng, num_procedures=8)
        assert all(addr % 4 == 0 for addr in take(fabric, 500))

    def test_packed_layout_footprint(self):
        rng = random.Random(1)
        fabric = ProcedureFabric(
            rng, num_procedures=10, mean_proc_instrs=50, layout="packed", code_base=0x1000
        )
        total = sum(p.instrs for p in fabric.procedures)
        last = fabric.procedures[-1]
        assert fabric.procedures[0].base == 0x1000
        assert last.base + last.instrs * 4 <= 0x1000 + (total + 4 * 10) * 4

    def test_packed_procedures_do_not_overlap(self):
        rng = random.Random(5)
        fabric = ProcedureFabric(rng, num_procedures=10, layout="packed")
        spans = sorted((p.base, p.base + p.instrs * 4) for p in fabric.procedures)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_rejects_bad_layout(self):
        with pytest.raises(ValueError):
            ProcedureFabric(random.Random(0), layout="heap")

    def test_rejects_zero_procedures(self):
        with pytest.raises(ValueError):
            ProcedureFabric(random.Random(0), num_procedures=0)

    def test_hot_aligned_share_frame_offset(self):
        rng = random.Random(3)
        fabric = ProcedureFabric(
            rng, num_procedures=16, code_span=64 * 1024, hot_count=4, hot_aligned=4
        )
        offsets = [p.base % 4096 for p in fabric.procedures[:4]]
        assert all(offset < 32 * 4 for offset in offsets)

    def test_runs_are_mostly_sequential(self):
        rng = random.Random(7)
        fabric = ProcedureFabric(rng, num_procedures=16, call_prob=0.02)
        addrs = take(fabric, 2000)
        sequential = sum(
            1 for a, b in zip(addrs, addrs[1:]) if b == a + 4
        )
        assert sequential / len(addrs) > 0.8


class TestDataPatterns:
    def test_stride_stream_wraps(self):
        out = take(stride_stream(100, 16, 8), 4)
        assert out == [100, 108, 100, 108]

    def test_stride_stream_offset(self):
        assert take(stride_stream(0, 16, 8, offset=8), 2) == [8, 0]

    def test_stride_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next(stride_stream(0, 16, 0))

    def test_interleaved_streams_round_robin(self):
        out = take(interleaved_streams([iter([1, 3]), iter([2, 4])]), 4)
        assert out == [1, 2, 3, 4]

    def test_interleaved_requires_streams(self):
        with pytest.raises(ValueError):
            next(interleaved_streams([]))

    def test_string_compare_alternates(self):
        out = take(string_compare(0, 1000, length_bytes=2), 6)
        assert out == [0, 1000, 1, 1001, 0, 1000]

    def test_conflicting_streams_lockstep(self):
        out = take(conflicting_streams((0, 100), 8, 4), 6)
        assert out == [0, 100, 4, 104, 0, 100]

    def test_conflicting_requires_bases(self):
        with pytest.raises(ValueError):
            next(conflicting_streams((), 8, 4))

    def test_random_working_set_bounds(self):
        rng = random.Random(0)
        out = take(random_working_set(rng, 1000, 64, granule=4), 200)
        assert all(1000 <= a < 1064 for a in out)
        assert all((a - 1000) % 4 == 0 for a in out)

    def test_pointer_chase_visits_every_node(self):
        rng = random.Random(0)
        out = take(pointer_chase(rng, 0, num_nodes=8, node_size=32, fields_per_visit=1), 8)
        assert sorted(a // 32 for a in out) == list(range(8))

    def test_pointer_chase_deterministic(self):
        a = take(pointer_chase(random.Random(5), 0, 8), 32)
        b = take(pointer_chase(random.Random(5), 0, 8), 32)
        assert a == b

    def test_stack_traffic_stays_in_window(self):
        rng = random.Random(0)
        out = take(stack_traffic(rng, 5000, frame_bytes=64, depth_frames=4), 300)
        assert all(5000 <= a < 5000 + 4 * 64 for a in out)

    def test_bursty_emits_contiguous_runs(self):
        rng = random.Random(0)
        background = itertools.repeat(99)
        out = take(bursty(rng, background, 0, 4096, burst_prob=1.0, burst_bytes=32, stride=4), 8)
        assert out == [0, 4, 8, 12, 16, 20, 24, 28]

    def test_bursty_zero_prob_is_background(self):
        rng = random.Random(0)
        out = take(bursty(rng, itertools.repeat(7), 0, 4096, burst_prob=0.0), 10)
        assert out == [7] * 10


class TestMix:
    def test_respects_weights_roughly(self):
        rng = random.Random(0)
        out = take(mix(rng, [itertools.repeat(1), itertools.repeat(2)], [0.9, 0.1]), 2000)
        ones = out.count(1)
        assert 1700 < ones < 1990

    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            next(mix(random.Random(0), [itertools.repeat(1)], [0.5, 0.5]))

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            next(mix(random.Random(0), [itertools.repeat(1)], [-1.0]))

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            next(mix(random.Random(0), [itertools.repeat(1)], [0.0]))


class TestPhaseInterleaving:
    def _phase(self, data_per_instr, instructions=100, store_fraction=0.5):
        return Phase(
            name="p",
            instructions=instructions,
            code=loop_code(0, 8),
            data=stride_stream(10_000, 1024, 4),
            data_per_instr=data_per_instr,
            store_fraction=store_fraction,
        )

    def test_exact_instruction_count(self):
        out = list(interleave_phase(self._phase(0.5), random.Random(0)))
        assert sum(1 for k, _ in out if k == int(IFETCH)) == 100

    def test_exact_data_ratio(self):
        out = list(interleave_phase(self._phase(0.5), random.Random(0)))
        data = [p for p in out if p[0] != int(IFETCH)]
        assert len(data) == 50

    def test_data_never_precedes_first_instruction(self):
        out = list(interleave_phase(self._phase(0.9), random.Random(0)))
        assert out[0][0] == int(IFETCH)

    def test_store_fraction_zero(self):
        out = list(interleave_phase(self._phase(1.0, store_fraction=0.0), random.Random(0)))
        assert all(k != int(STORE) for k, _ in out)

    def test_store_fraction_one(self):
        out = list(interleave_phase(self._phase(1.0, store_fraction=1.0), random.Random(0)))
        data_kinds = {k for k, _ in out if k != int(IFETCH)}
        assert data_kinds == {int(STORE)}

    def test_run_phases_concatenates(self):
        phases = [self._phase(0.0, instructions=10), self._phase(0.0, instructions=5)]
        out = list(run_phases(phases, random.Random(0)))
        assert len(out) == 15


# -- building-block contracts --------------------------------------------------
#
# One factory per exported name (pinned against ``patterns.__all__``),
# each producing a fresh stream from a caller-supplied rng, so the same
# contracts — seed-determinism, address alignment, finiteness — can be
# checked uniformly across every block.


def _phase_pair(data_per_instr=0.5):
    return Phase(
        name="p",
        instructions=60,
        code=loop_code(0x0, 8),
        data=stride_stream(0x9_0000, 1024, 8),
        data_per_instr=data_per_instr,
        store_fraction=0.5,
    )


CONTRACT_FACTORIES = {
    "straight_code": lambda rng: straight_code(0x1000, 64),
    "loop_code": lambda rng: loop_code(0x2000, 8),
    "loop_calling_helper": lambda rng: loop_calling_helper(
        0x3000, 0x4000, loop_instrs=6, helper_instrs=3
    ),
    "alternate_code": lambda rng: alternate_code(
        rng, loop_code(0x0, 8), loop_code(0x8000, 8), 5, 5
    ),
    "ProcedureFabric": lambda rng: ProcedureFabric(
        rng, num_procedures=8, code_span=32 * 1024
    ),
    "stride_stream": lambda rng: stride_stream(0x1_0000, 4096, 16),
    "interleaved_streams": lambda rng: interleaved_streams(
        [stride_stream(0x0, 256, 4), stride_stream(0x1000, 256, 4)]
    ),
    "string_compare": lambda rng: string_compare(0x2_0000, 0x3_0000, 128, element=4),
    "conflicting_streams": lambda rng: conflicting_streams((0x0, 0x1_0000), 512, 8),
    "random_working_set": lambda rng: random_working_set(rng, 0x4_0000, 4096, granule=8),
    "pointer_chase": lambda rng: pointer_chase(
        rng, 0x5_0000, num_nodes=32, node_size=64, fields_per_visit=2
    ),
    "stack_traffic": lambda rng: stack_traffic(
        rng, 0x6_0000, frame_bytes=96, depth_frames=8, granule=4
    ),
    "bursty": lambda rng: bursty(
        rng,
        random_working_set(rng, 0x0, 1024, granule=8),
        0x7_0000,
        4096,
        burst_prob=0.1,
        burst_bytes=64,
        stride=8,
    ),
    "mix": lambda rng: mix(
        rng, [stride_stream(0x0, 256, 4), stride_stream(0x1000, 256, 4)], [0.5, 0.5]
    ),
    "Phase": lambda rng: run_phases([_phase_pair()], rng),
    "run_phases": lambda rng: run_phases([_phase_pair(), _phase_pair(0.0)], rng),
}

#: Expected address alignment per block under the factory parameters.
CONTRACT_ALIGNMENT = {
    "straight_code": 4,
    "loop_code": 4,
    "loop_calling_helper": 4,
    "alternate_code": 4,
    "ProcedureFabric": 4,
    "stride_stream": 16,
    "interleaved_streams": 4,
    "string_compare": 4,
    "conflicting_streams": 8,
    "random_working_set": 8,
    "pointer_chase": 8,
    "stack_traffic": 4,
    "bursty": 8,
    "mix": 4,
    "Phase": 4,
    "run_phases": 4,
}

#: Exact yields for the blocks contracted to terminate; everything else
#: must keep producing indefinitely.
CONTRACT_FINITE = {
    "straight_code": 64,  # one address per instruction
    "Phase": 60 + 30,  # instructions + data_per_instr * instructions
    "run_phases": 90 + 60,  # both phases, concatenated
}


def _contract_addresses(items):
    """Plain addresses from either address or (kind, address) streams."""
    return [item[1] if isinstance(item, tuple) else item for item in items]


class TestBuildingBlockContracts:
    """Uniform contracts across every exported building block."""

    def test_factories_cover_every_export(self):
        from repro.traces import patterns

        assert set(CONTRACT_FACTORIES) == set(patterns.__all__)
        assert set(CONTRACT_ALIGNMENT) == set(patterns.__all__)

    @pytest.mark.parametrize("name", sorted(CONTRACT_FACTORIES))
    def test_same_seed_same_stream(self, name):
        factory = CONTRACT_FACTORIES[name]
        a = take(factory(random.Random(7)), 400)
        b = take(factory(random.Random(7)), 400)
        assert a == b

    @pytest.mark.parametrize("name", sorted(CONTRACT_FACTORIES))
    def test_addresses_aligned(self, name):
        out = take(CONTRACT_FACTORIES[name](random.Random(3)), 400)
        modulus = CONTRACT_ALIGNMENT[name]
        assert all(a % modulus == 0 for a in _contract_addresses(out))

    @pytest.mark.parametrize("name", sorted(CONTRACT_FINITE))
    def test_finite_blocks_terminate(self, name):
        out = list(CONTRACT_FACTORIES[name](random.Random(1)))
        assert len(out) == CONTRACT_FINITE[name]

    @pytest.mark.parametrize(
        "name", sorted(set(CONTRACT_FACTORIES) - set(CONTRACT_FINITE))
    )
    def test_infinite_blocks_keep_producing(self, name):
        # 600 draws is past every natural period in the factory table
        # (loops of 8, extents of a few hundred bytes, 32-node chains).
        out = take(CONTRACT_FACTORIES[name](random.Random(2)), 600)
        assert len(out) == 600

    @pytest.mark.parametrize("name", ["Phase", "run_phases"])
    def test_phase_streams_tag_access_kinds(self, name):
        out = list(CONTRACT_FACTORIES[name](random.Random(4)))
        kinds = {kind for kind, _ in out}
        from repro.common.types import LOAD

        assert kinds <= {int(IFETCH), int(LOAD), int(STORE)}
        assert int(IFETCH) in kinds
        assert kinds - {int(IFETCH)}, "phases must interleave data references"
