"""Unit tests for the synthetic reference-pattern building blocks."""

import itertools
import random

import pytest

from repro.common.types import IFETCH, STORE
from repro.traces.patterns import (
    Phase,
    ProcedureFabric,
    alternate_code,
    bursty,
    conflicting_streams,
    interleave_phase,
    interleaved_streams,
    loop_calling_helper,
    loop_code,
    mix,
    pointer_chase,
    random_working_set,
    run_phases,
    stack_traffic,
    straight_code,
    stride_stream,
    string_compare,
)


def take(iterator, n):
    return list(itertools.islice(iter(iterator), n))


class TestCodePatterns:
    def test_straight_code(self):
        assert list(straight_code(100, 3)) == [100, 104, 108]

    def test_straight_code_instr_size(self):
        assert list(straight_code(0, 3, instr_size=8)) == [0, 8, 16]

    def test_loop_code_cycles(self):
        out = take(loop_code(0, 4), 10)
        assert out == [0, 4, 8, 12, 0, 4, 8, 12, 0, 4]

    def test_loop_calling_helper_shape(self):
        gen = loop_calling_helper(0, 10_000, loop_instrs=4, helper_instrs=2)
        one_iteration = take(gen, 6)
        # first half (2), helper (2), second half (2)
        assert one_iteration == [0, 4, 10_000, 10_004, 8, 12]

    def test_alternate_code_draws_from_both(self):
        rng = random.Random(0)
        a = itertools.repeat(1)
        b = itertools.repeat(2)
        out = take(alternate_code(rng, a, b, 5, 5), 200)
        assert 1 in out and 2 in out


class TestProcedureFabric:
    def test_deterministic_for_seed(self):
        streams = []
        for _ in range(2):
            rng = random.Random(42)
            fabric = ProcedureFabric(rng, num_procedures=16, code_span=16 * 1024)
            streams.append(take(fabric, 500))
        assert streams[0] == streams[1]

    def test_addresses_aligned_to_instr_size(self):
        rng = random.Random(1)
        fabric = ProcedureFabric(rng, num_procedures=8)
        assert all(addr % 4 == 0 for addr in take(fabric, 500))

    def test_packed_layout_footprint(self):
        rng = random.Random(1)
        fabric = ProcedureFabric(
            rng, num_procedures=10, mean_proc_instrs=50, layout="packed", code_base=0x1000
        )
        total = sum(p.instrs for p in fabric.procedures)
        last = fabric.procedures[-1]
        assert fabric.procedures[0].base == 0x1000
        assert last.base + last.instrs * 4 <= 0x1000 + (total + 4 * 10) * 4

    def test_packed_procedures_do_not_overlap(self):
        rng = random.Random(5)
        fabric = ProcedureFabric(rng, num_procedures=10, layout="packed")
        spans = sorted((p.base, p.base + p.instrs * 4) for p in fabric.procedures)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_rejects_bad_layout(self):
        with pytest.raises(ValueError):
            ProcedureFabric(random.Random(0), layout="heap")

    def test_rejects_zero_procedures(self):
        with pytest.raises(ValueError):
            ProcedureFabric(random.Random(0), num_procedures=0)

    def test_hot_aligned_share_frame_offset(self):
        rng = random.Random(3)
        fabric = ProcedureFabric(
            rng, num_procedures=16, code_span=64 * 1024, hot_count=4, hot_aligned=4
        )
        offsets = [p.base % 4096 for p in fabric.procedures[:4]]
        assert all(offset < 32 * 4 for offset in offsets)

    def test_runs_are_mostly_sequential(self):
        rng = random.Random(7)
        fabric = ProcedureFabric(rng, num_procedures=16, call_prob=0.02)
        addrs = take(fabric, 2000)
        sequential = sum(
            1 for a, b in zip(addrs, addrs[1:]) if b == a + 4
        )
        assert sequential / len(addrs) > 0.8


class TestDataPatterns:
    def test_stride_stream_wraps(self):
        out = take(stride_stream(100, 16, 8), 4)
        assert out == [100, 108, 100, 108]

    def test_stride_stream_offset(self):
        assert take(stride_stream(0, 16, 8, offset=8), 2) == [8, 0]

    def test_stride_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next(stride_stream(0, 16, 0))

    def test_interleaved_streams_round_robin(self):
        out = take(interleaved_streams([iter([1, 3]), iter([2, 4])]), 4)
        assert out == [1, 2, 3, 4]

    def test_interleaved_requires_streams(self):
        with pytest.raises(ValueError):
            next(interleaved_streams([]))

    def test_string_compare_alternates(self):
        out = take(string_compare(0, 1000, length_bytes=2), 6)
        assert out == [0, 1000, 1, 1001, 0, 1000]

    def test_conflicting_streams_lockstep(self):
        out = take(conflicting_streams((0, 100), 8, 4), 6)
        assert out == [0, 100, 4, 104, 0, 100]

    def test_conflicting_requires_bases(self):
        with pytest.raises(ValueError):
            next(conflicting_streams((), 8, 4))

    def test_random_working_set_bounds(self):
        rng = random.Random(0)
        out = take(random_working_set(rng, 1000, 64, granule=4), 200)
        assert all(1000 <= a < 1064 for a in out)
        assert all((a - 1000) % 4 == 0 for a in out)

    def test_pointer_chase_visits_every_node(self):
        rng = random.Random(0)
        out = take(pointer_chase(rng, 0, num_nodes=8, node_size=32, fields_per_visit=1), 8)
        assert sorted(a // 32 for a in out) == list(range(8))

    def test_pointer_chase_deterministic(self):
        a = take(pointer_chase(random.Random(5), 0, 8), 32)
        b = take(pointer_chase(random.Random(5), 0, 8), 32)
        assert a == b

    def test_stack_traffic_stays_in_window(self):
        rng = random.Random(0)
        out = take(stack_traffic(rng, 5000, frame_bytes=64, depth_frames=4), 300)
        assert all(5000 <= a < 5000 + 4 * 64 for a in out)

    def test_bursty_emits_contiguous_runs(self):
        rng = random.Random(0)
        background = itertools.repeat(99)
        out = take(bursty(rng, background, 0, 4096, burst_prob=1.0, burst_bytes=32, stride=4), 8)
        assert out == [0, 4, 8, 12, 16, 20, 24, 28]

    def test_bursty_zero_prob_is_background(self):
        rng = random.Random(0)
        out = take(bursty(rng, itertools.repeat(7), 0, 4096, burst_prob=0.0), 10)
        assert out == [7] * 10


class TestMix:
    def test_respects_weights_roughly(self):
        rng = random.Random(0)
        out = take(mix(rng, [itertools.repeat(1), itertools.repeat(2)], [0.9, 0.1]), 2000)
        ones = out.count(1)
        assert 1700 < ones < 1990

    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            next(mix(random.Random(0), [itertools.repeat(1)], [0.5, 0.5]))

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            next(mix(random.Random(0), [itertools.repeat(1)], [-1.0]))

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            next(mix(random.Random(0), [itertools.repeat(1)], [0.0]))


class TestPhaseInterleaving:
    def _phase(self, data_per_instr, instructions=100, store_fraction=0.5):
        return Phase(
            name="p",
            instructions=instructions,
            code=loop_code(0, 8),
            data=stride_stream(10_000, 1024, 4),
            data_per_instr=data_per_instr,
            store_fraction=store_fraction,
        )

    def test_exact_instruction_count(self):
        out = list(interleave_phase(self._phase(0.5), random.Random(0)))
        assert sum(1 for k, _ in out if k == int(IFETCH)) == 100

    def test_exact_data_ratio(self):
        out = list(interleave_phase(self._phase(0.5), random.Random(0)))
        data = [p for p in out if p[0] != int(IFETCH)]
        assert len(data) == 50

    def test_data_never_precedes_first_instruction(self):
        out = list(interleave_phase(self._phase(0.9), random.Random(0)))
        assert out[0][0] == int(IFETCH)

    def test_store_fraction_zero(self):
        out = list(interleave_phase(self._phase(1.0, store_fraction=0.0), random.Random(0)))
        assert all(k != int(STORE) for k, _ in out)

    def test_store_fraction_one(self):
        out = list(interleave_phase(self._phase(1.0, store_fraction=1.0), random.Random(0)))
        data_kinds = {k for k, _ in out if k != int(IFETCH)}
        assert data_kinds == {int(STORE)}

    def test_run_phases_concatenates(self):
        phases = [self._phase(0.0, instructions=10), self._phase(0.0, instructions=5)]
        out = list(run_phases(phases, random.Random(0)))
        assert len(out) == 15
