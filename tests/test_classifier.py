"""Unit and property tests for 3C miss classification (paper §3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.miss_classifier import MissClassifier
from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.common.types import MissKind
from repro.hierarchy.level import CacheLevel

lines = st.integers(min_value=0, max_value=300)


class TestConstruction:
    def test_rejects_zero_lines(self):
        with pytest.raises(ConfigurationError):
            MissClassifier(0)


class TestClassification:
    def test_first_reference_is_compulsory(self):
        classifier = MissClassifier(4)
        assert classifier.observe(1, direct_mapped_hit=False) is MissKind.COMPULSORY

    def test_hit_returns_none(self):
        classifier = MissClassifier(4)
        classifier.observe(1, False)
        assert classifier.observe(1, True) is None
        assert classifier.misses == 1

    def test_conflict_when_shadow_would_hit(self):
        classifier = MissClassifier(4)
        classifier.observe(1, False)
        classifier.observe(2, False)
        # Line 1 still in the 4-entry shadow: a DM miss on it is conflict.
        assert classifier.observe(1, False) is MissKind.CONFLICT

    def test_capacity_when_shadow_also_misses(self):
        classifier = MissClassifier(2)
        for line in (1, 2, 3):
            classifier.observe(line, False)
        # Line 1 was evicted from the 2-entry shadow by 3.
        assert classifier.observe(1, False) is MissKind.CAPACITY

    def test_coherence_always_zero(self):
        classifier = MissClassifier(4)
        for line in range(20):
            classifier.observe(line, False)
        assert classifier.counts[MissKind.COHERENCE] == 0

    def test_shadow_tracks_hits_too(self):
        """A DM hit must refresh the shadow's LRU state."""
        classifier = MissClassifier(2)
        classifier.observe(1, False)
        classifier.observe(2, False)
        classifier.observe(1, True)   # refresh 1 in shadow
        classifier.observe(3, False)  # evicts 2, not 1
        assert classifier.observe(1, False) is MissKind.CONFLICT
        assert classifier.observe(2, False) is MissKind.CAPACITY

    def test_percent_conflict(self):
        classifier = MissClassifier(4)
        classifier.observe(1, False)  # compulsory
        classifier.observe(2, False)  # compulsory
        classifier.observe(1, False)  # conflict
        assert classifier.percent_conflict == pytest.approx(100.0 / 3.0)

    def test_summary_keys(self):
        classifier = MissClassifier(4)
        classifier.observe(1, False)
        summary = classifier.summary()
        assert summary["misses"] == 1
        assert summary["compulsory"] == 1
        assert set(summary) == {
            "accesses",
            "misses",
            "compulsory",
            "capacity",
            "conflict",
            "coherence",
            "percent_conflict",
        }

    def test_reset(self):
        classifier = MissClassifier(4)
        classifier.observe(1, False)
        classifier.reset()
        assert classifier.misses == 0
        assert classifier.observe(1, False) is MissKind.COMPULSORY


class TestPartitionProperties:
    @settings(deadline=None, max_examples=50)
    @given(refs=st.lists(lines, max_size=500))
    def test_classes_partition_the_misses(self, refs):
        config = CacheConfig(256, 16)  # 16 lines
        level = CacheLevel(config, classify=True)
        for line in refs:
            level.access_line(line)
        classifier = level.classifier
        assert (
            classifier.compulsory_misses
            + classifier.capacity_misses
            + classifier.conflict_misses
            == level.stats.demand_misses
        )
        assert classifier.accesses == len(refs)

    @settings(deadline=None, max_examples=50)
    @given(refs=st.lists(lines, max_size=500))
    def test_compulsory_equals_unique_lines_missed_first(self, refs):
        config = CacheConfig(256, 16)
        level = CacheLevel(config, classify=True)
        for line in refs:
            level.access_line(line)
        # Every distinct line's first access is a DM miss (cold cache),
        # so compulsory misses == number of distinct lines referenced.
        assert level.classifier.compulsory_misses == len(set(refs))

    @settings(deadline=None, max_examples=30)
    @given(refs=st.lists(st.integers(min_value=0, max_value=15), max_size=300))
    def test_no_conflicts_when_footprint_fits(self, refs):
        """A footprint within one FA capacity AND with <= 1 line per set
        cannot conflict; restrict lines to 0..15 in a 16-line cache so
        each line has its own set: all misses are compulsory."""
        config = CacheConfig(256, 16)
        level = CacheLevel(config, classify=True)
        for line in refs:
            level.access_line(line)
        assert level.classifier.conflict_misses == 0
        assert level.classifier.capacity_misses == 0
