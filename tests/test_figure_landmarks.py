"""Landmark assertions on the actual figure modules (claims-scale suite).

test_paper_claims.py verifies the underlying shapes through the sweep
machinery; these tests drive the *experiment modules themselves* — the
code a user runs — and pin the landmark features a reader would check
each figure against.
"""

import pytest

from repro.experiments import (
    figure_3_3,
    figure_3_5,
    figure_3_6,
    figure_3_7,
    figure_4_3,
    figure_4_5,
    figure_4_6,
    figure_4_7,
)


@pytest.fixture(scope="module")
def figures(claims_suite):
    return {
        "3_3": figure_3_3.run(traces=claims_suite),
        "3_5": figure_3_5.run(traces=claims_suite),
        "3_6": figure_3_6.run(traces=claims_suite),
        "3_7": figure_3_7.run(traces=claims_suite),
        "4_3": figure_4_3.run(traces=claims_suite),
        "4_5": figure_4_5.run(traces=claims_suite),
        "4_6": figure_4_6.run(traces=claims_suite),
        "4_7": figure_4_7.run(traces=claims_suite),
    }


class TestFigure33And35Landmarks:
    def test_victim_average_dominates_miss_average(self, figures):
        mc = figures["3_3"].get("L1 D-cache average")
        vc = figures["3_5"].get("L1 D-cache average")
        for entries in (1, 2, 4, 15):
            assert vc.point(entries) >= mc.point(entries)

    def test_one_entry_contrast(self, figures):
        assert figures["3_3"].get("L1 D-cache average").point(1) < 5.0
        assert figures["3_5"].get("L1 D-cache average").point(1) > 15.0

    def test_data_side_beats_instruction_side(self, figures):
        for fig in ("3_3", "3_5"):
            d = figures[fig].get("L1 D-cache average").point(4)
            i = figures[fig].get("L1 I-cache average").point(4)
            assert d > i

    def test_met_tops_the_data_curves(self, figures):
        met = figures["3_5"].get("L1 D-cache met").point(4)
        for name in ("ccom", "grr", "yacc", "linpack", "liver"):
            assert met >= figures["3_5"].get(f"L1 D-cache {name}").point(4)


class TestFigure36And37Landmarks:
    def test_benefit_declines_with_cache_size(self, figures):
        vc4 = figures["3_6"].get("4-entry victim cache")
        assert vc4.point(1) > vc4.point(128)
        assert vc4.point(4) > vc4.point(32)

    def test_conflict_share_declines_with_cache_size(self, figures):
        share = figures["3_6"].get("percent conflict misses")
        assert share.point(1) > share.point(128)

    def test_benefit_rises_with_line_size(self, figures):
        vc4 = figures["3_7"].get("4-entry victim cache")
        assert vc4.point(8) < vc4.point(64) < vc4.point(256)

    def test_conflict_share_rises_with_line_size(self, figures):
        share = figures["3_7"].get("percent conflict misses")
        assert share.point(8) < share.point(256)

    def test_more_entries_always_help(self, figures):
        for fig, x in (("3_6", 4), ("3_7", 32)):
            values = [
                figures[fig].get(f"{n}-entry victim cache").point(x)
                for n in (1, 2, 4, 15)
            ]
            assert values == sorted(values)


class TestFigure43And45Landmarks:
    def test_instruction_average_dwarfs_data_average(self, figures):
        i = figures["4_3"].get("L1 I-cache average").point(16)
        d = figures["4_3"].get("L1 D-cache average").point(16)
        assert i > 3 * d

    def test_multiway_lifts_data_not_instructions(self, figures):
        d_single = figures["4_3"].get("L1 D-cache average").point(16)
        d_multi = figures["4_5"].get("L1 D-cache average").point(16)
        i_single = figures["4_3"].get("L1 I-cache average").point(16)
        i_multi = figures["4_5"].get("L1 I-cache average").point(16)
        assert d_multi > 1.5 * d_single
        assert abs(i_multi - i_single) < 8.0

    def test_liver_jump_visible_in_the_figure(self, figures):
        single = figures["4_3"].get("L1 D-cache liver").point(16)
        multi = figures["4_5"].get("L1 D-cache liver").point(16)
        assert multi > 3 * max(1.0, single)


class TestFigure46And47Landmarks:
    def test_instruction_curve_flat_across_sizes(self, figures):
        curve = figures["4_6"].get("single, I-cache").y
        assert max(curve) - min(curve) < 20.0

    def test_single_data_curve_rises_with_size(self, figures):
        curve = figures["4_6"].get("single, D-cache")
        assert curve.point(128) > curve.point(1)

    def test_data_curves_fall_with_line_size(self, figures):
        for label in ("single, D-cache", "4-way, D-cache"):
            curve = figures["4_7"].get(label)
            assert curve.point(8) > 2 * curve.point(128)

    def test_instruction_curve_survives_long_lines(self, figures):
        curve = figures["4_7"].get("single, I-cache")
        assert curve.point(128) > 30.0
