"""Unit tests for Trace / MaterializedTrace / TraceStats."""

import pytest

from repro.common.types import IFETCH, LOAD, STORE, Access, AccessKind
from repro.traces.trace import Trace, TraceMeta, trace_from_pairs

PAIRS = [
    (int(IFETCH), 0x100),
    (int(LOAD), 0x2000),
    (int(IFETCH), 0x104),
    (int(STORE), 0x2008),
    (int(IFETCH), 0x108),
]


@pytest.fixture
def trace():
    return trace_from_pairs("mini", PAIRS, program_type="test")


class TestTraceRecipe:
    def test_replays_identically(self):
        recipe = Trace(TraceMeta("r"), lambda: iter(PAIRS))
        assert list(recipe) == list(recipe)

    def test_accesses_view(self):
        recipe = Trace(TraceMeta("r"), lambda: iter(PAIRS))
        accesses = list(recipe.accesses())
        assert accesses[0] == Access(AccessKind.IFETCH, 0x100)
        assert accesses[3].is_write

    def test_materialize(self):
        recipe = Trace(TraceMeta("r"), lambda: iter(PAIRS))
        materialized = recipe.materialize()
        assert len(materialized) == 5
        assert list(materialized) == PAIRS

    def test_name_property(self):
        assert Trace(TraceMeta("abc"), lambda: iter([])).name == "abc"


class TestMaterializedTrace:
    def test_split_streams(self, trace):
        assert trace.instruction_addresses == [0x100, 0x104, 0x108]
        assert trace.data_addresses == [0x2000, 0x2008]

    def test_stream_selector(self, trace):
        assert trace.stream("i") == trace.instruction_addresses
        assert trace.stream("d") == trace.data_addresses
        with pytest.raises(ValueError):
            trace.stream("x")

    def test_split_preserves_order(self, trace):
        assert trace.data_addresses[0] < trace.data_addresses[1]

    def test_stats(self, trace):
        stats = trace.stats()
        assert stats.instructions == 3
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.data_references == 2
        assert stats.total_references == 5
        assert stats.data_per_instruction == pytest.approx(2 / 3)

    def test_stats_cached(self, trace):
        assert trace.stats() is trace.stats()

    def test_unique_lines(self, trace):
        # I side: 0x100, 0x104, 0x108 -> one 16B line (0x10).
        assert trace.unique_lines("i", 16) == 1
        # D side: 0x2000 and 0x2008 share a 16B line.
        assert trace.unique_lines("d", 16) == 1
        assert trace.unique_lines("d", 8) == 2

    def test_empty_trace(self):
        empty = trace_from_pairs("empty", [])
        assert len(empty) == 0
        assert empty.stats().data_per_instruction == 0.0
        assert empty.instruction_addresses == []


class TestTraceStatsEdge:
    def test_zero_instruction_ratio(self):
        trace = trace_from_pairs("dataonly", [(int(LOAD), 0)])
        assert trace.stats().data_per_instruction == 0.0
